// Shared load generator for the GDPNET01 serving front end: spin up a
// Server over a DisclosureService with K datasets (K <= the registry
// capacity, so artifacts stay cached) and N tenants, open one connection
// per tenant, fire requests concurrently, and report QPS + latency
// percentiles + typed-refusal counts.  Used by BM_NetServeLoad in
// bench_scalability.cpp (the recorded trajectory datapoint) and by the
// standalone bench_serve_net tool (interactive load-gen runs).
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"

namespace gdp::net::loadgen {

struct LoadGenConfig {
  int num_tenants{100};
  int num_datasets{4};         // <= registry_capacity: artifacts stay cached
  int requests_per_tenant{5};
  std::size_t num_workers{4};
  std::size_t queue_capacity{256};
  std::size_t registry_capacity{4};
  std::int64_t edges_per_dataset{10'000};
  int hierarchy_depth{6};
  std::uint64_t seed{42};
};

struct LoadGenResult {
  std::uint64_t requests{0};
  std::uint64_t granted{0};
  std::uint64_t denied{0};
  std::uint64_t overloaded{0};  // typed sheds — expected under pressure
  std::uint64_t errors{0};      // typed Error replies — expected zero
  double elapsed_s{0.0};
  double qps{0.0};
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
};

inline double PercentileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) {
    return 0.0;
  }
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

inline gdp::graph::BipartiteGraph LoadGenGraph(std::int64_t edges,
                                               std::uint64_t seed) {
  gdp::common::Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_edges = static_cast<gdp::graph::EdgeCount>(edges);
  p.num_left = static_cast<gdp::graph::NodeIndex>(edges / 5 + 16);
  p.num_right = static_cast<gdp::graph::NodeIndex>(edges / 3 + 16);
  return GenerateDblpLike(p, rng);
}

// One full fleet run.  Every reply must be a typed response — a transport
// error or protocol violation throws out of here (the zero-crash contract
// is the caller's assertion).
inline LoadGenResult RunServeLoad(const LoadGenConfig& cfg) {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = cfg.hierarchy_depth;
  spec.hierarchy.validate_hierarchy = false;

  gdp::serve::DisclosureService service(cfg.registry_capacity);
  std::vector<std::string> datasets;
  for (int d = 0; d < cfg.num_datasets; ++d) {
    const std::string name = "ds" + std::to_string(d);
    service.catalog().Register(
        name,
        gdp::serve::Dataset{
            LoadGenGraph(cfg.edges_per_dataset, cfg.seed + 100 + d), spec,
            cfg.seed + d, {}, {}});
    datasets.push_back(name);
  }
  gdp::serve::TenantProfile profile;
  profile.epsilon_cap = 1e6;
  profile.delta_cap = 0.5;
  for (int t = 0; t < cfg.num_tenants; ++t) {
    profile.privilege = t % (cfg.hierarchy_depth + 1);
    service.broker().Register("tenant" + std::to_string(t), profile);
  }
  service.broker().Register("warm", gdp::serve::TenantProfile{1e6, 0.5, 0});

  ServerConfig server_cfg;
  server_cfg.num_workers = cfg.num_workers;
  server_cfg.queue_capacity = cfg.queue_capacity;
  server_cfg.seed = cfg.seed;
  Server server(service, server_cfg);

  // Pre-warm: compile every artifact outside the timed window so the run
  // measures steady-state serving, not Phase-1 specialization.
  {
    Client warm(server.port());
    for (const std::string& ds : datasets) {
      wire::ServeRequest req;
      req.tenant = "warm";
      req.dataset = ds;
      (void)warm.Serve(req);
    }
  }

  std::atomic<std::uint64_t> granted{0};
  std::atomic<std::uint64_t> denied{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> errors{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(cfg.num_tenants) *
                       static_cast<std::size_t>(cfg.requests_per_tenant));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> tenants;
  tenants.reserve(static_cast<std::size_t>(cfg.num_tenants));
  for (int t = 0; t < cfg.num_tenants; ++t) {
    tenants.emplace_back([&, t] {
      Client client(server.port());
      std::vector<double> local_us;
      local_us.reserve(static_cast<std::size_t>(cfg.requests_per_tenant));
      wire::ServeRequest req;
      req.tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < cfg.requests_per_tenant; ++i) {
        req.dataset = datasets[static_cast<std::size_t>((t + i) %
                                                        cfg.num_datasets)];
        const auto t0 = std::chrono::steady_clock::now();
        const auto reply = client.Serve(req);
        const auto t1 = std::chrono::steady_clock::now();
        local_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        switch (reply.status) {
          case ReplyStatus::kOk:
            (reply.value.granted ? granted : denied)
                .fetch_add(1, std::memory_order_relaxed);
            break;
          case ReplyStatus::kOverloaded:
            overloaded.fetch_add(1, std::memory_order_relaxed);
            break;
          case ReplyStatus::kError:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
      const std::lock_guard<std::mutex> lock(latency_mutex);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  LoadGenResult result;
  result.requests = static_cast<std::uint64_t>(latencies_us.size());
  result.granted = granted.load();
  result.denied = denied.load();
  result.overloaded = overloaded.load();
  result.errors = errors.load();
  result.elapsed_s = elapsed_s;
  result.qps = elapsed_s > 0.0
                   ? static_cast<double>(result.requests) / elapsed_s
                   : 0.0;
  result.p50_us = PercentileUs(latencies_us, 0.50);
  result.p95_us = PercentileUs(latencies_us, 0.95);
  result.p99_us = PercentileUs(latencies_us, 0.99);
  return result;
}

// ---------------------------------------------------------------------------
// Connection-scaling run: hold `connections` mostly-idle connections open on
// the epoll loop while a small active set serves for a fixed wall-clock
// `duration_ms`.  This is the datapoint the thread-per-connection design
// could not produce: N idle sockets cost N reader threads there, but cost
// one epoll interest entry here.  QPS/latency of the active set measure the
// interference of the idle mass on the hot path.

struct ConnScaleConfig {
  int connections{128};   // mostly-idle open connections held for the run
  int duration_ms{300};   // active-request window (wall clock)
  int active_tenants{8};  // tenants firing requests during the window
  std::size_t num_workers{4};
  std::size_t queue_capacity{256};
  std::int64_t edges{10'000};
  int hierarchy_depth{6};
  std::uint64_t seed{42};
};

struct ConnScaleResult {
  std::uint64_t connections_open{0};  // server-side view at steady state
  std::uint64_t io_threads{0};
  std::uint64_t requests{0};
  std::uint64_t errors{0};
  double elapsed_s{0.0};
  double qps{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
};

// An idle GDPNET01 connection: connected, magic delivered (so it is off the
// slow-loris clock), then silent.  Returns the fd; -1 on failure.
inline int OpenIdleConn(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  std::size_t sent = 0;
  while (sent < wire::kMagicSize) {
    const ssize_t n = ::send(fd, wire::kMagic + sent, wire::kMagicSize - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ::close(fd);
      return -1;
    }
    sent += static_cast<std::size_t>(n);
  }
  return fd;
}

inline ConnScaleResult RunConnScale(const ConnScaleConfig& cfg) {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = cfg.hierarchy_depth;
  spec.hierarchy.validate_hierarchy = false;

  gdp::serve::DisclosureService service(2);
  service.catalog().Register(
      "ds0", gdp::serve::Dataset{LoadGenGraph(cfg.edges, cfg.seed + 100),
                                 spec, cfg.seed, {}, {}});
  gdp::serve::TenantProfile profile;
  profile.epsilon_cap = 1e6;
  profile.delta_cap = 0.5;
  for (int t = 0; t < cfg.active_tenants; ++t) {
    profile.privilege = t % (cfg.hierarchy_depth + 1);
    service.broker().Register("tenant" + std::to_string(t), profile);
  }

  ServerConfig server_cfg;
  server_cfg.num_workers = cfg.num_workers;
  server_cfg.queue_capacity = cfg.queue_capacity;
  server_cfg.seed = cfg.seed;
  Server server(service, server_cfg);

  // Pre-warm the artifact outside the timed window.
  {
    Client warm(server.port());
    wire::ServeRequest req;
    req.tenant = "tenant0";
    req.dataset = "ds0";
    (void)warm.Serve(req);
  }

  // The idle mass.  A failed open here is a result, not an exception — it
  // shows up as connections_open below the target.
  std::vector<int> idle_fds;
  idle_fds.reserve(static_cast<std::size_t>(cfg.connections));
  for (int i = 0; i < cfg.connections; ++i) {
    const int fd = OpenIdleConn(server.port());
    if (fd >= 0) {
      idle_fds.push_back(fd);
    }
  }

  std::atomic<std::uint64_t> errors{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_us;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(cfg.duration_ms);
  std::vector<std::thread> actives;
  actives.reserve(static_cast<std::size_t>(cfg.active_tenants));
  for (int t = 0; t < cfg.active_tenants; ++t) {
    actives.emplace_back([&, t] {
      Client client(server.port());
      std::vector<double> local_us;
      wire::ServeRequest req;
      req.tenant = "tenant" + std::to_string(t);
      req.dataset = "ds0";
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto reply = client.Serve(req);
        const auto t1 = std::chrono::steady_clock::now();
        local_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (reply.status == ReplyStatus::kError) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const std::lock_guard<std::mutex> lock(latency_mutex);
      latencies_us.insert(latencies_us.end(), local_us.begin(),
                          local_us.end());
    });
  }
  for (std::thread& t : actives) {
    t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Sample the server's view while the idle mass is still attached.
  const wire::StatsResponse stats = server.GetStats();
  for (const int fd : idle_fds) {
    ::close(fd);
  }
  server.Stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  ConnScaleResult result;
  result.connections_open = stats.connections_open;
  result.io_threads = stats.io_threads;
  result.requests = static_cast<std::uint64_t>(latencies_us.size());
  result.errors = errors.load();
  result.elapsed_s = elapsed_s;
  result.qps = elapsed_s > 0.0
                   ? static_cast<double>(result.requests) / elapsed_s
                   : 0.0;
  result.p50_us = PercentileUs(latencies_us, 0.50);
  result.p99_us = PercentileUs(latencies_us, 0.99);
  return result;
}

}  // namespace gdp::net::loadgen
