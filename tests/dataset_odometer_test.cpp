// The cross-tenant dataset odometer: tracking, budget caps with
// privacy-filter semantics (retire on the first would-exceed charge, never
// reopen), and the crash-recovery RestoreCharge path that bypasses caps.
#include "serve/dataset_odometer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/error.hpp"
#include "dp/privacy_accountant.hpp"

namespace gdp::serve {
namespace {

using gdp::dp::AccountingPolicy;
using gdp::dp::MechanismEvent;

TEST(DatasetOdometerTest, UnbudgetedDatasetTracksButNeverRefuses) {
  DatasetOdometer odometer;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(odometer.Charge("open", MechanismEvent::PureEps(10.0)),
              OdometerAdmit::kAdmitted);
  }
  const auto snap = odometer.Get("open");
  ASSERT_TRUE(snap.has_value());
  EXPECT_FALSE(snap->budgeted);
  EXPECT_FALSE(snap->retired);
  EXPECT_EQ(snap->charges, 50u);
  EXPECT_DOUBLE_EQ(snap->epsilon_spent, 500.0);
  EXPECT_FALSE(odometer.IsRetired("open"));
}

TEST(DatasetOdometerTest, NeverSeenDatasetHasNoSnapshot) {
  DatasetOdometer odometer;
  EXPECT_FALSE(odometer.Get("ghost").has_value());
  EXPECT_FALSE(odometer.IsRetired("ghost"));
}

TEST(DatasetOdometerTest, SetBudgetValidatesLikeALedger) {
  DatasetOdometer odometer;
  EXPECT_THROW(odometer.SetBudget("ds", 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(odometer.SetBudget("ds", -1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(odometer.SetBudget("ds", 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(odometer.SetBudget("ds", 1.0, -0.1), std::invalid_argument);
  // Non-sequential accounting needs delta headroom to state a guarantee at.
  EXPECT_THROW(odometer.SetBudget("ds", 1.0, 0.0, AccountingPolicy::kRdp),
               std::invalid_argument);
  EXPECT_NO_THROW(odometer.SetBudget("ds", 1.0, 0.0));
}

TEST(DatasetOdometerTest, BudgetCannotMoveUnderRecordedSpend) {
  DatasetOdometer odometer;
  ASSERT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(0.5)),
            OdometerAdmit::kAdmitted);
  EXPECT_THROW(odometer.SetBudget("ds", 10.0, 0.1), gdp::common::StateError);
}

TEST(DatasetOdometerTest, FirstWouldExceedChargeRetiresTheDataset) {
  DatasetOdometer odometer;
  odometer.SetBudget("ds", 1.0, 0.1);
  EXPECT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(0.6)),
            OdometerAdmit::kAdmitted);
  // 0.6 + 0.6 > 1.0: refused AND retired.
  EXPECT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(0.6)),
            OdometerAdmit::kRefusedNewlyRetired);
  EXPECT_TRUE(odometer.IsRetired("ds"));
  // An exhausted filter never reopens — even a tiny charge is refused.
  EXPECT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(1e-9)),
            OdometerAdmit::kRefusedRetired);
  const auto snap = odometer.Get("ds");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->retired);
  EXPECT_FALSE(snap->retire_reason.empty());
  // The tripping charge was REFUSED: only the admitted spend is recorded.
  EXPECT_EQ(snap->charges, 1u);
  EXPECT_DOUBLE_EQ(snap->epsilon_spent, 0.6);
}

TEST(DatasetOdometerTest, RestoreChargeBypassesCapsWithoutRetiring) {
  // Replayed history is a fact: it must land even past the cap, and
  // retirement is re-applied only by its own replayed record.
  DatasetOdometer odometer;
  odometer.SetBudget("ds", 1.0, 0.1);
  odometer.RestoreCharge("ds", MechanismEvent::PureEps(0.8));
  odometer.RestoreCharge("ds", MechanismEvent::PureEps(0.8));
  const auto snap = odometer.Get("ds");
  ASSERT_TRUE(snap.has_value());
  EXPECT_DOUBLE_EQ(snap->epsilon_spent, 1.6);
  EXPECT_EQ(snap->charges, 2u);
  EXPECT_FALSE(snap->retired);
  // Live admission still enforces: the next real charge trips the cap.
  EXPECT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(0.1)),
            OdometerAdmit::kRefusedNewlyRetired);
}

TEST(DatasetOdometerTest, ExplicitRetireIsIdempotentFirstReasonWins) {
  DatasetOdometer odometer;
  odometer.Retire("ds", "operator pulled it");
  odometer.Retire("ds", "second opinion");
  const auto snap = odometer.Get("ds");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->retired);
  EXPECT_EQ(snap->retire_reason, "operator pulled it");
  EXPECT_EQ(odometer.Charge("ds", MechanismEvent::PureEps(0.1)),
            OdometerAdmit::kRefusedRetired);
}

TEST(DatasetOdometerTest, MalformedEventRejectedWithoutSpending) {
  DatasetOdometer odometer;
  MechanismEvent bad = MechanismEvent::PureEps(1.0);
  bad.epsilon = -1.0;
  EXPECT_THROW((void)odometer.Charge("ds", bad), std::invalid_argument);
  const auto snap = odometer.Get("ds");
  if (snap.has_value()) {
    EXPECT_EQ(snap->charges, 0u);
  }
}

TEST(DatasetOdometerTest, RdpBudgetComposesTighterThanSequential) {
  // The same Gaussian stream under an RDP odometer admits more charges than
  // under a sequential one at identical caps — the whole point of making the
  // odometer's accountant pluggable.
  const MechanismEvent gauss = MechanismEvent::Gaussian(0.999, 1e-6, 3.0);
  auto admitted_until_retired = [&gauss](AccountingPolicy policy) {
    DatasetOdometer odometer;
    odometer.SetBudget("ds", 8.0, 1e-2, policy);
    int admitted = 0;
    while (admitted < 10000 &&
           odometer.Charge("ds", gauss) == OdometerAdmit::kAdmitted) {
      ++admitted;
    }
    return admitted;
  };
  const int sequential = admitted_until_retired(AccountingPolicy::kSequential);
  const int rdp = admitted_until_retired(AccountingPolicy::kRdp);
  EXPECT_GT(sequential, 0);
  EXPECT_GT(rdp, sequential);
  EXPECT_LT(rdp, 10000) << "the RDP budget must still exhaust";
}

TEST(DatasetOdometerTest, SnapshotsAreNameOrderedAndComplete) {
  DatasetOdometer odometer;
  ASSERT_EQ(odometer.Charge("zeta", MechanismEvent::PureEps(1.0)),
            OdometerAdmit::kAdmitted);
  odometer.SetBudget("alpha", 2.0, 0.1);
  ASSERT_EQ(odometer.Charge("alpha", MechanismEvent::PureEps(1.0)),
            OdometerAdmit::kAdmitted);
  const auto all = odometer.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].dataset, "alpha");
  EXPECT_TRUE(all[0].budgeted);
  EXPECT_DOUBLE_EQ(all[0].epsilon_cap, 2.0);
  EXPECT_EQ(all[1].dataset, "zeta");
  EXPECT_FALSE(all[1].budgeted);
}

}  // namespace
}  // namespace gdp::serve
