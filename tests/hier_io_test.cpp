#include "hier/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::hier {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

GroupHierarchy BuildTestHierarchy(int depth = 4) {
  Rng grng(3);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(48, 64, 400, grng);
  SpecializationConfig cfg;
  cfg.depth = depth;
  const Specializer spec(cfg);
  Rng rng(5);
  return spec.BuildHierarchy(g, rng).hierarchy;
}

TEST(HierIoTest, RoundTripsThroughStream) {
  const GroupHierarchy h = BuildTestHierarchy();
  std::stringstream ss;
  WriteHierarchy(h, ss);
  const GroupHierarchy back = ReadHierarchy(ss);
  ASSERT_EQ(back.num_levels(), h.num_levels());
  for (int lvl = 0; lvl < h.num_levels(); ++lvl) {
    const Partition& a = h.level(lvl);
    const Partition& b = back.level(lvl);
    ASSERT_EQ(a.num_groups(), b.num_groups()) << "level " << lvl;
    for (gdp::graph::NodeIndex v = 0; v < a.num_left_nodes(); ++v) {
      ASSERT_EQ(a.GroupOf(Side::kLeft, v), b.GroupOf(Side::kLeft, v));
    }
    for (gdp::graph::NodeIndex v = 0; v < a.num_right_nodes(); ++v) {
      ASSERT_EQ(a.GroupOf(Side::kRight, v), b.GroupOf(Side::kRight, v));
    }
    for (GroupId g = 0; g < a.num_groups(); ++g) {
      EXPECT_EQ(a.group(g).parent, b.group(g).parent);
      EXPECT_EQ(a.group(g).side, b.group(g).side);
      EXPECT_EQ(a.group(g).size, b.group(g).size);
    }
  }
}

TEST(HierIoTest, ReaderRevalidatesRefinement) {
  // Corrupt a parent pointer: the reader must reject the file.
  const GroupHierarchy h = BuildTestHierarchy(3);
  std::stringstream ss;
  WriteHierarchy(h, ss);
  std::string text = ss.str();
  // The level-3 (top) parents line is "parents -1 -1"; rewrite a mid-level
  // parents line instead: find the second "parents" line and break its first
  // entry.
  const auto first = text.find("parents");
  ASSERT_NE(first, std::string::npos);
  const auto second = text.find("parents", first + 1);
  ASSERT_NE(second, std::string::npos);
  text.replace(second, std::string("parents 0").size(), "parents 9");
  std::istringstream in(text);
  EXPECT_ANY_THROW((void)ReadHierarchy(in));
}

TEST(HierIoTest, BadMagicThrows) {
  std::istringstream in("wrong-magic\n");
  EXPECT_THROW((void)ReadHierarchy(in), gdp::common::IoError);
}

TEST(HierIoTest, TruncatedFileThrows) {
  const GroupHierarchy h = BuildTestHierarchy(3);
  std::stringstream ss;
  WriteHierarchy(h, ss);
  const std::string text = ss.str();
  std::istringstream in(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)ReadHierarchy(in), gdp::common::IoError);
}

TEST(HierIoTest, LabelOutOfRangeThrows) {
  std::istringstream in(
      "gdp-hierarchy v1\n"
      "dims 1 1\n"
      "levels 2\n"
      "level 0 2\n"
      "parents 0 1\n"
      "left_labels 5\n"  // out of range
      "right_labels 1\n"
      "level 1 2\n"
      "parents -1 -1\n"
      "left_labels 0\n"
      "right_labels 1\n");
  EXPECT_THROW((void)ReadHierarchy(in), gdp::common::IoError);
}

TEST(HierIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gdp_hier_test.tsv";
  const GroupHierarchy h = BuildTestHierarchy(3);
  WriteHierarchyFile(h, path);
  const GroupHierarchy back = ReadHierarchyFile(path);
  EXPECT_EQ(back.num_levels(), h.num_levels());
  std::remove(path.c_str());
}

TEST(HierIoTest, MissingFileThrows) {
  EXPECT_THROW((void)ReadHierarchyFile("/nonexistent/hier.tsv"),
               gdp::common::IoError);
}

}  // namespace
}  // namespace gdp::hier
