#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace gdp::common {
namespace {

// RAII guard restoring the log level and clog buffer after each test.
class ClogCapture {
 public:
  ClogCapture() : old_level_(GetLogLevel()), old_buf_(std::clog.rdbuf(out_.rdbuf())) {}
  ~ClogCapture() {
    std::clog.rdbuf(old_buf_);
    SetLogLevel(old_level_);
  }
  [[nodiscard]] std::string text() const { return out_.str(); }

 private:
  LogLevel old_level_;
  std::ostringstream out_;
  std::streambuf* old_buf_;
};

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  ClogCapture capture;
  SetLogLevel(LogLevel::kWarn);
  GDP_LOG(kInfo) << "hidden message";
  GDP_LOG(kWarn) << "visible warning";
  GDP_LOG(kError) << "visible error";
  const std::string text = capture.text();
  EXPECT_EQ(text.find("hidden message"), std::string::npos);
  EXPECT_NE(text.find("visible warning"), std::string::npos);
  EXPECT_NE(text.find("visible error"), std::string::npos);
}

TEST(LoggingTest, OffSilencesEverything) {
  ClogCapture capture;
  SetLogLevel(LogLevel::kOff);
  GDP_LOG(kError) << "should not appear";
  EXPECT_TRUE(capture.text().empty());
}

TEST(LoggingTest, MessagesCarryLevelTag) {
  ClogCapture capture;
  SetLogLevel(LogLevel::kDebug);
  GDP_LOG(kDebug) << "dbg " << 42;
  const std::string text = capture.text();
  EXPECT_NE(text.find("[DEBUG]"), std::string::npos);
  EXPECT_NE(text.find("dbg 42"), std::string::npos);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU deterministically.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    x = x + 1e-9;
  }
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedSeconds() * 50);
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), t1 + 1.0);
}

TEST(ErrorTypesTest, HierarchyAndCatchability) {
  // IoError and BudgetExhaustedError are runtime errors; StateError a logic
  // error — all catchable as std::exception.
  EXPECT_THROW(throw IoError("io"), std::runtime_error);
  EXPECT_THROW(throw BudgetExhaustedError("budget"), std::runtime_error);
  EXPECT_THROW(throw StateError("state"), std::logic_error);
  try {
    throw IoError("detail message");
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "detail message");
  }
}

}  // namespace
}  // namespace gdp::common
