// Known-answer and cross-path tests for the shared Crc32 helper.  Both the
// GDPWAL01 WAL and GDPSNAP01 snapshot formats persist these checksums to
// disk, so the function must compute the exact IEEE/zlib CRC-32 — not merely
// a self-consistent hash — and every internal fast path (slice-by-8,
// PCLMULQDQ folding on x86) must agree with the bytewise definition at every
// length and split point.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "common/crc32.hpp"

namespace gdp::common {
namespace {

// Bit-at-a-time reference implementation of the reflected IEEE polynomial.
std::uint32_t ReferenceCrc32(std::string_view data, std::uint32_t seed = 0) {
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    crc ^= static_cast<unsigned char>(ch);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

// Deterministic pseudo-random filler (no std::rand; reproducible).
std::string PseudoRandomBytes(std::size_t n, std::uint64_t seed) {
  std::string out(n, '\0');
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>(x & 0xFF);
  }
  return out;
}

TEST(Crc32Test, KnownAnswerVectors) {
  // The canonical CRC-32/ISO-HDLC check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  // Long enough to engage the SIMD fold (>= 64 bytes).
  const std::string aaa(100, 'a');
  EXPECT_EQ(Crc32(aaa), ReferenceCrc32(aaa));
  // 1 MiB of zeros exercises the steady-state folding loop.
  const std::string zeros(1 << 20, '\0');
  EXPECT_EQ(Crc32(zeros), ReferenceCrc32(zeros));
}

TEST(Crc32Test, MatchesBitwiseReferenceAtEveryLengthNearFoldBoundaries) {
  // Lengths 0..300 cross every dispatch boundary: pure-bytewise, slice-by-8
  // only, and SIMD head + bytewise tail for each residue mod 16.
  const std::string data = PseudoRandomBytes(300, 42);
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const std::string_view prefix(data.data(), len);
    ASSERT_EQ(Crc32(prefix), ReferenceCrc32(prefix)) << "length " << len;
  }
}

TEST(Crc32Test, IncrementalChainingEqualsOneShot) {
  const std::string data = PseudoRandomBytes(4096, 7);
  const std::uint32_t whole = Crc32(data);
  // Split at points that land the second chunk on, before, and after the
  // 64-byte SIMD threshold and the mod-16 cut.
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{15}, std::size_t{16},
                                  std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{1000},
                                  std::size_t{4095}, std::size_t{4096}}) {
    const std::uint32_t head = Crc32(std::string_view(data.data(), split));
    const std::uint32_t chained =
        Crc32(std::string_view(data.data() + split, data.size() - split), head);
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

TEST(Crc32Test, SeededContinuationMatchesReference) {
  const std::string a = PseudoRandomBytes(129, 1);
  const std::string b = PseudoRandomBytes(257, 2);
  EXPECT_EQ(Crc32(b, Crc32(a)), ReferenceCrc32(b, ReferenceCrc32(a)));
}

}  // namespace
}  // namespace gdp::common
