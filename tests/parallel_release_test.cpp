// Parity and determinism guarantees of the plan-based release engine:
//  - plan-based ReleaseAll is BIT-identical to the legacy per-level path,
//  - ParallelReleaseAll output is invariant across thread counts,
//  - the mechanism cache never perturbs results.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/group_dp_engine.hpp"
#include "core/release_plan.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::hier::GroupHierarchy;

BipartiteGraph TestGraph() {
  Rng rng(3);
  return gdp::graph::GenerateUniformRandom(64, 64, 1000, rng);
}

GroupHierarchy TestHierarchy(const BipartiteGraph& g, int depth = 4) {
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = depth;
  const gdp::hier::Specializer spec(cfg);
  Rng rng(5);
  return spec.BuildHierarchy(g, rng).hierarchy;
}

// Exact (bitwise) equality of two releases, every field.
void ExpectBitIdentical(const MultiLevelRelease& a, const MultiLevelRelease& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int lvl = 0; lvl < a.num_levels(); ++lvl) {
    const LevelRelease& x = a.level(lvl);
    const LevelRelease& y = b.level(lvl);
    EXPECT_EQ(x.level, y.level);
    EXPECT_EQ(x.sensitivity, y.sensitivity) << "level " << lvl;
    EXPECT_EQ(x.noise_stddev, y.noise_stddev) << "level " << lvl;
    EXPECT_EQ(x.group_noise_stddev, y.group_noise_stddev) << "level " << lvl;
    EXPECT_EQ(x.true_total, y.true_total) << "level " << lvl;
    EXPECT_EQ(x.noisy_total, y.noisy_total) << "level " << lvl;
    EXPECT_EQ(x.true_group_counts, y.true_group_counts) << "level " << lvl;
    EXPECT_EQ(x.noisy_group_counts, y.noisy_group_counts) << "level " << lvl;
  }
}

TEST(PlanParityTest, PlannedReleaseAllBitIdenticalToLegacy) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng planned_rng(43);
  Rng legacy_rng(43);
  ExpectBitIdentical(engine.ReleaseAll(g, h, planned_rng),
                     engine.ReleaseAllLegacy(g, h, legacy_rng));
}

TEST(PlanParityTest, ParityHoldsForEveryNoiseKind) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  for (const NoiseKind kind :
       {NoiseKind::kGaussian, NoiseKind::kAnalyticGaussian, NoiseKind::kLaplace,
        NoiseKind::kDiscreteGaussian, NoiseKind::kGeometric}) {
    ReleaseConfig cfg;
    cfg.noise = kind;
    const GroupDpEngine engine(cfg);
    Rng planned_rng(47);
    Rng legacy_rng(47);
    ExpectBitIdentical(engine.ReleaseAll(g, h, planned_rng),
                       engine.ReleaseAllLegacy(g, h, legacy_rng));
  }
}

TEST(PlanParityTest, ParityHoldsWithoutGroupCountsAndWithClamp) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  cfg.clamp_nonnegative = true;
  cfg.epsilon_g = 0.1;
  const GroupDpEngine engine(cfg);
  Rng planned_rng(53);
  Rng legacy_rng(53);
  ExpectBitIdentical(engine.ReleaseAll(g, h, planned_rng),
                     engine.ReleaseAllLegacy(g, h, legacy_rng));
}

TEST(PlanParityTest, UniformBudgetsMatchConfiguredEpsilonPath) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};
  const std::vector<double> budgets(
      static_cast<std::size_t>(h.num_levels()),
      engine.config().epsilon_g);
  Rng uniform_rng(59);
  Rng budget_rng(59);
  ExpectBitIdentical(engine.ReleaseAll(g, h, uniform_rng),
                     engine.ReleaseAllWithBudgets(g, h, budgets, budget_rng));
}

TEST(PlanParityTest, WarmMechanismCacheDoesNotChangeResults) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine warm{ReleaseConfig{}};
  {
    Rng warmup(61);
    (void)warm.ReleaseAll(g, h, warmup);  // populate the cache
  }
  const GroupDpEngine cold{ReleaseConfig{}};
  Rng warm_rng(67);
  Rng cold_rng(67);
  ExpectBitIdentical(warm.ReleaseAll(g, h, warm_rng),
                     cold.ReleaseAll(g, h, cold_rng));
}

TEST(ParallelReleaseTest, OutputInvariantAcrossThreadCounts) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g, 5);
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng rng1(71);
  const MultiLevelRelease one = engine.ParallelReleaseAll(g, h, rng1, 1);
  Rng rng2(71);
  const MultiLevelRelease two = engine.ParallelReleaseAll(g, h, rng2, 2);
  Rng rng8(71);
  const MultiLevelRelease eight = engine.ParallelReleaseAll(g, h, rng8, 8);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, eight);
}

TEST(ParallelReleaseTest, SeedDeterministicAndSeedSensitive) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng a1(73);
  Rng a2(73);
  ExpectBitIdentical(engine.ParallelReleaseAll(g, h, a1, 4),
                     engine.ParallelReleaseAll(g, h, a2, 4));
  Rng b(79);
  const MultiLevelRelease other = engine.ParallelReleaseAll(g, h, b, 4);
  Rng a3(73);
  const MultiLevelRelease base = engine.ParallelReleaseAll(g, h, a3, 4);
  bool any_differs = false;
  for (int lvl = 0; lvl < base.num_levels(); ++lvl) {
    any_differs |= base.level(lvl).noisy_total != other.level(lvl).noisy_total;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ParallelReleaseTest, SharedPlanAndPoolReuse) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};
  const ReleasePlan plan = ReleasePlan::Build(g, h);
  gdp::common::ThreadPool pool(3);
  Rng r1(83);
  Rng r2(83);
  // Same pool twice, same seed: identical output; and identical to the
  // convenience overload that builds its own plan/pool.
  ExpectBitIdentical(engine.ParallelReleaseAll(plan, r1, pool),
                     engine.ParallelReleaseAll(plan, r2, pool));
  Rng r3(83);
  Rng r4(83);
  ExpectBitIdentical(engine.ParallelReleaseAll(plan, r3, pool),
                     engine.ParallelReleaseAll(g, h, r4, 2));
}

TEST(ParallelReleaseTest, WellFormedRelease) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng rng(89);
  const MultiLevelRelease r = engine.ParallelReleaseAll(g, h, rng, 0);
  ASSERT_EQ(r.num_levels(), h.num_levels());
  for (int lvl = 0; lvl < r.num_levels(); ++lvl) {
    EXPECT_EQ(r.level(lvl).level, lvl);
    EXPECT_GT(r.level(lvl).noise_stddev, 0.0);
    EXPECT_EQ(r.level(lvl).true_group_counts.size(),
              h.level(lvl).num_groups());
  }
}

// ---- Within-level chunked vector noise (PR 2 tentpole) ----
//
// With noise_chunk_grain = 16 the 128-group singleton level splits into 8
// chunks, so these tests exercise the real chunked path on a small graph.

TEST(WithinLevelParallelTest, ChunkedNoiseBitIdenticalAcross1_2_8Threads) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g, 5);
  ReleaseConfig cfg;
  cfg.noise_chunk_grain = 16;
  const GroupDpEngine engine(cfg);
  Rng rng1(101);
  const MultiLevelRelease one = engine.ParallelReleaseAll(g, h, rng1, 1);
  Rng rng2(101);
  const MultiLevelRelease two = engine.ParallelReleaseAll(g, h, rng2, 2);
  Rng rng8(101);
  const MultiLevelRelease eight = engine.ParallelReleaseAll(g, h, rng8, 8);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, eight);
}

TEST(WithinLevelParallelTest, GrainIsPartOfTheOutputContract) {
  // One RNG substream per chunk: a different grain re-splits the stream, so
  // the released group counts must change.  (Thread count never does —
  // pinned above.)
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  ReleaseConfig coarse_cfg;
  coarse_cfg.noise_chunk_grain = 32;
  ReleaseConfig fine_cfg;
  fine_cfg.noise_chunk_grain = 16;
  const GroupDpEngine coarse(coarse_cfg);
  const GroupDpEngine fine(fine_cfg);
  Rng r1(103);
  Rng r2(103);
  const MultiLevelRelease a = coarse.ParallelReleaseAll(g, h, r1, 4);
  const MultiLevelRelease b = fine.ParallelReleaseAll(g, h, r2, 4);
  bool any_differs = false;
  for (int lvl = 0; lvl < a.num_levels(); ++lvl) {
    any_differs |=
        a.level(lvl).noisy_group_counts != b.level(lvl).noisy_group_counts;
  }
  EXPECT_TRUE(any_differs);
}

TEST(WithinLevelParallelTest, SingleChunkLevelMatchesSequentialDraw) {
  // A level that fits in one chunk takes the plain sequential draw from the
  // level stream, with or without a pool.
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const GroupDpEngine engine{ReleaseConfig{}};  // default grain 8192 >> 128
  const ReleasePlan plan = ReleasePlan::Build(g, h);
  gdp::common::ThreadPool pool(4);
  Rng with_pool(107);
  Rng without_pool(107);
  const LevelRelease a =
      engine.ReleaseLevelFromPlan(plan, 0, 0.999, with_pool, &pool);
  const LevelRelease b =
      engine.ReleaseLevelFromPlan(plan, 0, 0.999, without_pool);
  EXPECT_EQ(a.noisy_total, b.noisy_total);
  EXPECT_EQ(a.noisy_group_counts, b.noisy_group_counts);
}

TEST(MechanismCacheTest, MemoizesByCalibrationKey) {
  MechanismCache cache;
  const auto& a = cache.Get(NoiseKind::kGaussian, 0.9, 1e-5, 10.0);
  const auto& b = cache.Get(NoiseKind::kGaussian, 0.9, 1e-5, 10.0);
  EXPECT_EQ(&a, &b);  // same instance, not a re-derivation
  EXPECT_EQ(cache.size(), 1u);
  (void)cache.Get(NoiseKind::kGaussian, 0.9, 1e-5, 20.0);
  (void)cache.Get(NoiseKind::kLaplace, 0.9, 1e-5, 10.0);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(MechanismCacheTest, CachedStddevMatchesFreshMechanism) {
  const GroupDpEngine engine{ReleaseConfig{}};
  const auto fresh = MakeMechanism(NoiseKind::kGaussian, 0.999, 1e-5, 500.0);
  EXPECT_EQ(engine.NoiseStddevFor(500.0), fresh->NoiseStddev());
  // Second lookup hits the cache and must agree exactly.
  EXPECT_EQ(engine.NoiseStddevFor(500.0), fresh->NoiseStddev());
}

}  // namespace
}  // namespace gdp::core
