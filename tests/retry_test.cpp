// Backoff arithmetic and the retry loop, exercised entirely with injected
// sleeps — no test here ever blocks on a real clock.
#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <vector>

namespace gdp::common {
namespace {

using std::chrono::milliseconds;

TEST(BackoffDelayTest, GeometricGrowthFromInitialDelay) {
  BackoffOptions options;
  options.initial_delay = milliseconds(1);
  options.multiplier = 2.0;
  options.max_delay = milliseconds(100);
  EXPECT_EQ(BackoffDelay(options, 0), milliseconds(1));
  EXPECT_EQ(BackoffDelay(options, 1), milliseconds(2));
  EXPECT_EQ(BackoffDelay(options, 2), milliseconds(4));
  EXPECT_EQ(BackoffDelay(options, 5), milliseconds(32));
}

TEST(BackoffDelayTest, SaturatesAtMaxDelay) {
  BackoffOptions options;
  options.initial_delay = milliseconds(10);
  options.multiplier = 3.0;
  options.max_delay = milliseconds(50);
  EXPECT_EQ(BackoffDelay(options, 0), milliseconds(10));
  EXPECT_EQ(BackoffDelay(options, 1), milliseconds(30));
  EXPECT_EQ(BackoffDelay(options, 2), milliseconds(50));
  // Far past the cap: must not overflow, must stay pinned.
  EXPECT_EQ(BackoffDelay(options, 1000), milliseconds(50));
}

TEST(RetryTest, FirstSuccessSkipsSleepEntirely) {
  std::vector<milliseconds> sleeps;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      BackoffOptions{}, [&] { ++calls; return true; },
      [&](milliseconds d) { sleeps.push_back(d); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, SleepsBetweenAttemptsWithEscalatingDelays) {
  BackoffOptions options;
  options.max_attempts = 4;
  options.initial_delay = milliseconds(1);
  options.multiplier = 2.0;
  options.max_delay = milliseconds(100);
  std::vector<milliseconds> sleeps;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      options,
      [&] {
        ++calls;
        return calls == 3;  // succeed on the third attempt
      },
      [&](milliseconds d) { sleeps.push_back(d); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], milliseconds(1));
  EXPECT_EQ(sleeps[1], milliseconds(2));
}

TEST(RetryTest, ExhaustionReturnsFalseAfterExactlyMaxAttempts) {
  BackoffOptions options;
  options.max_attempts = 5;
  std::vector<milliseconds> sleeps;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      options, [&] { ++calls; return false; },
      [&](milliseconds d) { sleeps.push_back(d); });
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(sleeps.size(), 4u) << "one sleep between each pair of attempts";
}

TEST(RetryTest, MaxAttemptsOneMeansNoRetry) {
  BackoffOptions options;
  options.max_attempts = 1;
  int calls = 0;
  EXPECT_FALSE(RetryWithBackoff(options, [&] { ++calls; return false; },
                                [](milliseconds) { FAIL() << "must not sleep"; }));
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExceptionsPropagateImmediately) {
  // The loop only retries `false`; a throw (a permanent error by the
  // caller's classification) must abort the loop on the spot.
  BackoffOptions options;
  options.max_attempts = 4;
  int calls = 0;
  EXPECT_THROW(
      (void)RetryWithBackoff(
          options,
          [&]() -> bool {
            ++calls;
            throw std::runtime_error("permanent");
          },
          [](milliseconds) {}),
      std::runtime_error);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gdp::common
