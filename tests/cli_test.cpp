#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include "core/release_io.hpp"
#include <fstream>
#include <iterator>
#include <sstream>

#include "cli/args.hpp"
#include "common/error.hpp"

namespace gdp::cli {
namespace {

// ---------- Args parser ----------

TEST(ArgsTest, ParsesFlagsAndSwitches) {
  const Args args = Args::Parse({"--eps", "0.5", "--consistent", "--depth", "7"},
                                {"eps", "depth"}, {"consistent"});
  EXPECT_EQ(args.GetOr("eps", ""), "0.5");
  EXPECT_DOUBLE_EQ(args.GetDouble("eps", 0.0), 0.5);
  EXPECT_EQ(args.GetInt("depth", 0), 7);
  EXPECT_TRUE(args.HasSwitch("consistent"));
  EXPECT_FALSE(args.HasSwitch("strip-truth"));
}

TEST(ArgsTest, DefaultsApplyWhenAbsent) {
  const Args args = Args::Parse({}, {"eps"});
  EXPECT_FALSE(args.Get("eps").has_value());
  EXPECT_DOUBLE_EQ(args.GetDouble("eps", 0.999), 0.999);
  EXPECT_EQ(args.GetInt("depth", 9), 9);
  EXPECT_EQ(args.GetOr("eps", "fallback"), "fallback");
}

TEST(ArgsTest, RejectsUnknownFlag) {
  EXPECT_THROW((void)Args::Parse({"--bogus", "1"}, {"eps"}),
               std::invalid_argument);
}

TEST(ArgsTest, RejectsMissingValue) {
  EXPECT_THROW((void)Args::Parse({"--eps"}, {"eps"}), std::invalid_argument);
}

TEST(ArgsTest, RejectsBareToken) {
  EXPECT_THROW((void)Args::Parse({"eps", "1"}, {"eps"}), std::invalid_argument);
}

TEST(ArgsTest, RejectsMalformedNumbers) {
  const Args args = Args::Parse({"--eps", "0.5x", "--depth", "7y"},
                                {"eps", "depth"});
  EXPECT_THROW((void)args.GetDouble("eps", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.GetInt("depth", 0), std::invalid_argument);
}

// ---------- command round trip ----------

class CliRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    graph_path_ = dir_ + "/cli_graph.tsv";
    release_path_ = dir_ + "/cli_release.tsv";
    hierarchy_path_ = dir_ + "/cli_hierarchy.tsv";
  }
  void TearDown() override {
    std::remove(graph_path_.c_str());
    std::remove(release_path_.c_str());
    std::remove(hierarchy_path_.c_str());
  }
  std::string dir_;
  std::string graph_path_;
  std::string release_path_;
  std::string hierarchy_path_;
};

TEST_F(CliRoundTripTest, GenerateDiscloseInspectDrilldown) {
  std::ostringstream out;
  // generate
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "500",
                      "--right", "700", "--edges", "3000", "--seed", "7"},
                     out),
            0);
  EXPECT_NE(out.str().find("wrote"), std::string::npos);

  // disclose (with consistency and hierarchy output)
  out.str("");
  ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                      release_path_, "--hierarchy", hierarchy_path_, "--depth",
                      "5", "--eps", "0.9", "--consistent"},
                     out),
            0);
  EXPECT_NE(out.str().find("budget ledger"), std::string::npos);
  EXPECT_NE(out.str().find("release written"), std::string::npos);

  // inspect
  out.str("");
  ASSERT_EQ(Dispatch({"inspect", "--release", release_path_}, out), 0);
  EXPECT_NE(out.str().find("L0"), std::string::npos);
  EXPECT_NE(out.str().find("L5"), std::string::npos);

  // drilldown
  out.str("");
  ASSERT_EQ(Dispatch({"drilldown", "--release", release_path_, "--hierarchy",
                      hierarchy_path_, "--side", "left", "--node", "3"},
                     out),
            0);
  EXPECT_NE(out.str().find("group_size"), std::string::npos);
  EXPECT_NE(out.str().find("L5"), std::string::npos);
}

TEST_F(CliRoundTripTest, DiscloseSweepWritesOneReleasePerEpsilon) {
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                      "--right", "500", "--edges", "2500", "--seed", "5"},
                     out),
            0);
  out.str("");
  ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                      release_path_, "--depth", "4", "--seed", "11", "--sweep",
                      "0.3,0.999"},
                     out),
            0);
  // One artifact per swept ε, readable, with sweep-labelled ledger entries.
  const std::string path_a = release_path_ + ".eps0.3";
  const std::string path_b = release_path_ + ".eps0.999";
  const auto release_a = gdp::core::ReadReleaseFile(path_a);
  const auto release_b = gdp::core::ReadReleaseFile(path_b);
  EXPECT_EQ(release_a.num_levels(), 5);
  EXPECT_EQ(release_b.num_levels(), 5);
  EXPECT_NE(release_a.level(1).noisy_total, release_b.level(1).noisy_total);
  EXPECT_NE(out.str().find("sweep eps=0.3"), std::string::npos);
  EXPECT_NE(out.str().find("sweep eps=0.999"), std::string::npos);
  EXPECT_NE(out.str().find("phase1"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CliDispatchTest, DiscloseRejectsMalformedSweepList) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"disclose", "--graph", "g", "--release", "r",
                               "--sweep", "0.3,,0.5"},
                              out),
               std::invalid_argument);
  EXPECT_THROW((void)Dispatch({"disclose", "--graph", "g", "--release", "r",
                               "--sweep", "0.3x"},
                              out),
               std::invalid_argument);
}

TEST_F(CliRoundTripTest, ThreadedDiscloseMatchesAnyThreadCount) {
  // --threads T with a fixed seed and grain: the artifact is identical for
  // every T (the within-level chunk layout is thread-count independent).
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                      "--right", "400", "--edges", "2500", "--seed", "9"},
                     out),
            0);
  std::string artifacts[2];
  const char* thread_args[] = {"2", "8"};
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                        release_path_, "--depth", "4", "--seed", "11",
                        "--threads", thread_args[i], "--noise-grain", "128"},
                       out),
              0);
    std::ifstream in(release_path_);
    artifacts[i].assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(artifacts[0], artifacts[1]);
  EXPECT_FALSE(artifacts[0].empty());
}

TEST_F(CliRoundTripTest, ServeBatchDriverServesTenantsByTier) {
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                      "--right", "500", "--edges", "2500", "--seed", "5"},
                     out),
            0);
  const std::string tenants_path = dir_ + "/cli_tenants.tsv";
  const std::string requests_path = dir_ + "/cli_requests.tsv";
  const std::string results_path = dir_ + "/cli_results.tsv";
  {
    std::ofstream tenants(tenants_path);
    tenants << "# id eps_cap delta_cap tier\n"
            << "alice 10.0 0.4 0\n"
            << "bob 10.0 0.4 4\n"
            << "carol 0.95 0.4 2\n";  // phase1 + one release, then exhausted
    std::ofstream requests(requests_path);
    requests << "# id eps_g [delta]\n"
             << "alice 0.9\n"
             << "bob 0.9 1e-6\n"
             << "carol 0.9\n"
             << "carol 0.9\n";  // second request exceeds carol's grant
  }
  out.str("");
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path, "--requests", requests_path, "--depth",
                      "5", "--seed", "11", "--out", results_path},
                     out),
            0);
  // Tier 0 gets the coarsest level (depth 5 => L5), tier 4 gets L1.
  EXPECT_NE(out.str().find("alice"), std::string::npos);
  EXPECT_NE(out.str().find("L5"), std::string::npos);
  EXPECT_NE(out.str().find("L1"), std::string::npos);
  EXPECT_NE(out.str().find("served 3/4"), std::string::npos);
  EXPECT_NE(out.str().find("denied"), std::string::npos);
  // One dataset, four requests: 1 compile, 2 registry hits (bob's and
  // carol's first touch); carol's second request serves from her attached
  // session without consulting the registry at all.
  EXPECT_NE(out.str().find("2 hits, 1 misses"), std::string::npos);
  // The results file mirrors the table.
  std::ifstream results(results_path);
  const std::string body((std::istreambuf_iterator<char>(results)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("carol"), std::string::npos);
  EXPECT_NE(body.find("denied"), std::string::npos);
  std::remove(tenants_path.c_str());
  std::remove(requests_path.c_str());
  std::remove(results_path.c_str());
}

TEST(CliDispatchTest, ServeRejectsMalformedTenantSpec) {
  const std::string dir = ::testing::TempDir();
  const std::string tenants_path = dir + "/bad_tenants.tsv";
  const std::string requests_path = dir + "/ok_requests.tsv";
  {
    std::ofstream tenants(tenants_path);
    tenants << "alice 10.0\n";  // missing delta_cap + tier
    std::ofstream requests(requests_path);
    requests << "alice 0.9\n";
  }
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"serve", "--graph", "g", "--tenants",
                               tenants_path, "--requests", requests_path},
                              out),
               gdp::common::IoError);
  std::remove(tenants_path.c_str());
  std::remove(requests_path.c_str());
}

TEST(CliDispatchTest, ServeRejectsMalformedRequestDelta) {
  // A typo'd optional delta must error loudly, never silently fall back to
  // the publication default.
  const std::string dir = ::testing::TempDir();
  const std::string tenants_path = dir + "/ok_tenants.tsv";
  const std::string requests_path = dir + "/bad_requests.tsv";
  {
    std::ofstream tenants(tenants_path);
    tenants << "alice 10.0 0.4 0\n";
  }
  std::ostringstream out;
  for (const char* bad_line :
       {"alice 0.9 1e-6x7", "alice 0.9 -1e-6", "alice 0.9 1e-6 extra"}) {
    std::ofstream requests(requests_path);
    requests << bad_line << "\n";
    requests.close();
    EXPECT_THROW((void)Dispatch({"serve", "--graph", "g", "--tenants",
                                 tenants_path, "--requests", requests_path},
                                out),
                 gdp::common::IoError)
        << bad_line;
  }
  std::remove(tenants_path.c_str());
  std::remove(requests_path.c_str());
}

TEST_F(CliRoundTripTest, DiscloseAccountingFlagShowsTightenedAudit) {
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                      "--right", "500", "--edges", "2500", "--seed", "5"},
                     out),
            0);
  // An rdp-accounted sweep: the audit report names the policy and prints the
  // tightened cumulative next to the naive totals.
  out.str("");
  ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                      release_path_, "--depth", "4", "--seed", "11", "--sweep",
                      "0.9,0.9,0.9", "--accounting", "rdp"},
                     out),
            0);
  EXPECT_NE(out.str().find("accounting=rdp"), std::string::npos);
  EXPECT_NE(out.str().find("rdp-accounted"), std::string::npos);
  // Same seed, sequential accounting: the released values are identical —
  // accounting is bookkeeping, not noise.
  const std::string rdp_point = release_path_ + ".eps0.9";
  std::ifstream rdp_in(rdp_point);
  const std::string rdp_artifact((std::istreambuf_iterator<char>(rdp_in)),
                                 std::istreambuf_iterator<char>());
  out.str("");
  ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                      release_path_, "--depth", "4", "--seed", "11", "--sweep",
                      "0.9,0.9,0.9", "--accounting", "sequential"},
                     out),
            0);
  EXPECT_EQ(out.str().find("rdp-accounted"), std::string::npos);
  std::ifstream seq_in(rdp_point);
  const std::string seq_artifact((std::istreambuf_iterator<char>(seq_in)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(rdp_artifact, seq_artifact);
  EXPECT_FALSE(rdp_artifact.empty());
  std::remove(rdp_point.c_str());
}

TEST_F(CliRoundTripTest, ServeAccountingFlagAndPerTenantColumnRoundTrip) {
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                      "--right", "500", "--edges", "2500", "--seed", "5"},
                     out),
            0);
  const std::string tenants_path = dir_ + "/cli_acct_tenants.tsv";
  const std::string requests_path = dir_ + "/cli_acct_requests.tsv";
  {
    std::ofstream tenants(tenants_path);
    // seq inherits the --accounting default (sequential); renyi overrides
    // via the optional 5th column.  Caps admit 5 sequential releases.
    tenants << "# id eps_cap delta_cap tier [accounting]\n"
            << "seq 5.0 1e-2 0\n"
            << "renyi 5.0 1e-2 0 rdp\n";
    std::ofstream requests(requests_path);
    for (int i = 0; i < 8; ++i) {
      requests << "seq 0.999\nrenyi 0.999\n";
    }
  }
  out.str("");
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path, "--requests", requests_path, "--depth",
                      "5", "--seed", "11"},
                     out),
            0);
  // The sequential tenant exhausts after 5 of its 8 requests; the rdp
  // tenant is granted all 8 from the same caps: 13/16 served.
  EXPECT_NE(out.str().find("served 13/16"), std::string::npos);
  EXPECT_NE(out.str().find("rdp"), std::string::npos);
  EXPECT_NE(out.str().find("acct_eps"), std::string::npos);
  std::remove(tenants_path.c_str());
  std::remove(requests_path.c_str());
}

TEST(CliDispatchTest, AccountingFlagRejectsUnknownPolicy) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"disclose", "--graph", "g", "--release", "r",
                               "--accounting", "renyi"},
                              out),
               std::invalid_argument);
  EXPECT_THROW((void)Dispatch({"serve", "--graph", "g", "--tenants", "t",
                               "--requests", "r", "--accounting", "bogus"},
                              out),
               std::invalid_argument);
}

TEST(CliDispatchTest, ServeRejectsBadTenantAccountingColumn) {
  const std::string dir = ::testing::TempDir();
  const std::string tenants_path = dir + "/bad_acct_tenants.tsv";
  const std::string requests_path = dir + "/ok_acct_requests.tsv";
  {
    std::ofstream tenants(tenants_path);
    tenants << "alice 10.0 0.4 0 renyi\n";  // not a policy name
    std::ofstream requests(requests_path);
    requests << "alice 0.9\n";
  }
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"serve", "--graph", "g", "--tenants",
                               tenants_path, "--requests", requests_path},
                              out),
               gdp::common::IoError);
  std::remove(tenants_path.c_str());
  std::remove(requests_path.c_str());
}

TEST(CliDispatchTest, DiscloseRejectsNonPositiveNoiseGrain) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"disclose", "--graph", "g", "--release", "r",
                               "--noise-grain", "0"},
                              out),
               std::invalid_argument);
}

TEST_F(CliRoundTripTest, StripTruthProducesZeroTruthArtifact) {
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "200",
                      "--right", "200", "--edges", "1000"},
                     out),
            0);
  ASSERT_EQ(Dispatch({"disclose", "--graph", graph_path_, "--release",
                      release_path_, "--depth", "4", "--strip-truth"},
                     out),
            0);
  // The artifact must carry no true values: read it back and check fields.
  const auto release = gdp::core::ReadReleaseFile(release_path_);
  for (const auto& lvl : release.levels()) {
    EXPECT_EQ(lvl.true_total, 0.0);
    for (const double t : lvl.true_group_counts) {
      EXPECT_EQ(t, 0.0);
    }
  }
}

// ---------- durable serving: --wal, audit --verify, dataset caps ----------

class CliWalTest : public CliRoundTripTest {
 protected:
  void SetUp() override {
    CliRoundTripTest::SetUp();
    wal_path_ = dir_ + "/cli_audit.wal";
    tenants_path_ = dir_ + "/cli_wal_tenants.tsv";
    requests_path_ = dir_ + "/cli_wal_requests.tsv";
    std::remove(wal_path_.c_str());
    std::ostringstream out;
    ASSERT_EQ(Dispatch({"generate", "--out", graph_path_, "--left", "400",
                        "--right", "500", "--edges", "2500", "--seed", "5"},
                       out),
              0);
  }
  void TearDown() override {
    std::remove(wal_path_.c_str());
    std::remove(tenants_path_.c_str());
    std::remove(requests_path_.c_str());
    CliRoundTripTest::TearDown();
  }
  std::string wal_path_;
  std::string tenants_path_;
  std::string requests_path_;
};

TEST_F(CliWalTest, ServeWalAuditVerifyRoundTripWithRecovery) {
  {
    std::ofstream tenants(tenants_path_);
    tenants << "alice 20.0 0.4 0\n"
            << "bob 20.0 0.4 2\n"
            << "mallory 1.0\n";  // malformed: skipped, NOT fatal
    std::ofstream requests(requests_path_);
    requests << "alice 0.9\n"
             << "bob 0.9\n"
             << "mallory 0.9\n";  // unknown tenant: row served as "unknown"
  }
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--wal", wal_path_},
                     out),
            0);
  // The malformed row and the unknown tenant degrade gracefully.
  EXPECT_NE(out.str().find("tenant spec line 3 skipped"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("1 malformed rows skipped"), std::string::npos);
  EXPECT_NE(out.str().find("unknown"), std::string::npos);
  EXPECT_NE(out.str().find("served 2/3"), std::string::npos);
  // 2 opens + 2 charges hit the log.
  EXPECT_NE(out.str().find("wal: 4 appends"), std::string::npos) << out.str();

  // Offline verification replays the log and recomputes every guarantee.
  out.str("");
  ASSERT_EQ(Dispatch({"audit", "--verify", wal_path_}, out), 0);
  EXPECT_NE(out.str().find("audit OK"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("4 records"), std::string::npos);

  // A second serve run over the SAME wal recovers the tenants and keeps
  // charging on top of the replayed history.
  out.str("");
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--wal", wal_path_},
                     out),
            0);
  EXPECT_NE(out.str().find("replayed 4 records"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("restored 2 tenants"), std::string::npos);
  // And the grown log still verifies end-to-end.
  out.str("");
  ASSERT_EQ(Dispatch({"audit", "--verify", wal_path_}, out), 0);
  EXPECT_NE(out.str().find("audit OK"), std::string::npos) << out.str();
}

TEST_F(CliWalTest, AuditFlagsTornTailUnlessTolerated) {
  {
    std::ofstream tenants(tenants_path_);
    tenants << "alice 20.0 0.4 0\n";
    std::ofstream requests(requests_path_);
    requests << "alice 0.9\nalice 0.9\n";
  }
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--wal", wal_path_},
                     out),
            0);
  // Chop into the last frame: the torn tail a crash mid-append leaves.
  std::string bytes;
  {
    std::ifstream in(wal_path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 5u);
  {
    std::ofstream rewrite(wal_path_, std::ios::binary | std::ios::trunc);
    rewrite.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 5));
  }
  out.str("");
  EXPECT_EQ(Dispatch({"audit", "--verify", wal_path_}, out), 1);
  EXPECT_NE(out.str().find("FAIL"), std::string::npos) << out.str();
  // Tolerating the tail passes: the surviving records all verify.
  out.str("");
  EXPECT_EQ(
      Dispatch({"audit", "--verify", wal_path_, "--tolerate-tail"}, out), 0);
  EXPECT_NE(out.str().find("audit OK"), std::string::npos) << out.str();
}

TEST_F(CliWalTest, ServeWithWalReleasesIdenticalValuesToWalless) {
  {
    std::ofstream tenants(tenants_path_);
    tenants << "alice 20.0 0.4 0\nbob 20.0 0.4 3\n";
    std::ofstream requests(requests_path_);
    requests << "alice 0.9\nbob 0.9\nalice 0.7\n";
  }
  const std::string results_a = dir_ + "/cli_wal_results_a.tsv";
  const std::string results_b = dir_ + "/cli_wal_results_b.tsv";
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--out", results_a},
                     out),
            0);
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--out", results_b, "--wal",
                      wal_path_},
                     out),
            0);
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string a = slurp(results_a);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(results_b))
      << "the WAL must add bookkeeping, never randomness";
  std::remove(results_a.c_str());
  std::remove(results_b.c_str());
}

TEST_F(CliWalTest, DatasetCapRetiresAcrossRequestsAndRestarts) {
  {
    std::ofstream tenants(tenants_path_);
    tenants << "alice 20.0 0.4 0\n";
    std::ofstream requests(requests_path_);
    requests << "alice 0.9\nalice 0.9\nalice 0.9\nalice 0.9\n";
  }
  std::ostringstream out;
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--wal", wal_path_,
                      "--dataset-eps-cap", "1.2", "--dataset-delta-cap",
                      "0.4"},
                     out),
            0);
  EXPECT_NE(out.str().find("RETIRED"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("denied"), std::string::npos);
  // The retirement is durable: a fresh run over the same wal starts retired
  // and serves nothing.
  out.str("");
  ASSERT_EQ(Dispatch({"serve", "--graph", graph_path_, "--tenants",
                      tenants_path_, "--requests", requests_path_, "--depth",
                      "5", "--seed", "11", "--wal", wal_path_,
                      "--dataset-eps-cap", "1.2", "--dataset-delta-cap",
                      "0.4"},
                     out),
            0);
  EXPECT_NE(out.str().find("1 datasets retired"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("served 0/4"), std::string::npos);
  EXPECT_NE(out.str().find("RETIRED"), std::string::npos);
  // The log (including the retirement record) still verifies.
  out.str("");
  EXPECT_EQ(Dispatch({"audit", "--verify", wal_path_}, out), 0)
      << out.str();
}

TEST(CliDispatchTest, AuditRequiresVerifyFlag) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"audit"}, out), std::invalid_argument);
}

TEST(CliDispatchTest, AuditRejectsMissingAndNonWalFiles) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"audit", "--verify", "/nonexistent/x.wal"},
                              out),
               gdp::common::IoError);
  const std::string path = ::testing::TempDir() + "/not_a_wal.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a write-ahead log at all";
  }
  EXPECT_THROW((void)Dispatch({"audit", "--verify", path}, out),
               gdp::common::IoError);
  std::remove(path.c_str());
}

TEST(CliDispatchTest, NoCommandPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(Dispatch({}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliDispatchTest, UnknownCommandPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(Dispatch({"frobnicate"}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliDispatchTest, MissingRequiredFlagThrows) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"inspect"}, out), std::invalid_argument);
  EXPECT_THROW((void)Dispatch({"generate"}, out), std::invalid_argument);
}

TEST(CliDispatchTest, DrilldownRejectsBadSide) {
  std::ostringstream out;
  EXPECT_THROW((void)Dispatch({"drilldown", "--release", "r", "--hierarchy",
                               "h", "--side", "middle", "--node", "0"},
                              out),
               std::invalid_argument);
}

}  // namespace
}  // namespace gdp::cli
