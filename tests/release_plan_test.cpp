#include "core/release_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/group_dp_engine.hpp"
#include "core/group_sensitivity.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::graph::EdgeCount;
using gdp::hier::GroupHierarchy;
using gdp::hier::GroupId;
using gdp::hier::GroupInfo;
using gdp::hier::Partition;
using gdp::hier::Side;

// Span accessors materialised for gtest's operator== against vectors.
std::vector<EdgeCount> ToVec(std::span<const EdgeCount> s) {
  return {s.begin(), s.end()};
}

// Hand-built 3-level hierarchy over a 4x4 graph:
//   level 2 (top):  {L0..L3} {R0..R3}
//   level 1:        {L0,L1} {L2,L3} {R0,R1} {R2,R3}
//   level 0:        singletons
BipartiteGraph HandGraph() {
  return BipartiteGraph(4, 4, {{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 3}, {2, 3}});
}

GroupHierarchy HandHierarchy() {
  // Level 0: singletons whose parents are the level-1 group ids.
  std::vector<GroupInfo> g0;
  for (GroupId parent : {0u, 0u, 1u, 1u}) {
    g0.push_back(GroupInfo{Side::kLeft, 1, parent});
  }
  for (GroupId parent : {2u, 2u, 3u, 3u}) {
    g0.push_back(GroupInfo{Side::kRight, 1, parent});
  }
  Partition level0({0, 1, 2, 3}, {4, 5, 6, 7}, std::move(g0));

  // Level 1: pairs whose parents are the level-2 (top) group ids.
  std::vector<GroupInfo> g1{GroupInfo{Side::kLeft, 2, 0},
                            GroupInfo{Side::kLeft, 2, 0},
                            GroupInfo{Side::kRight, 2, 1},
                            GroupInfo{Side::kRight, 2, 1}};
  Partition level1({0, 0, 1, 1}, {2, 2, 3, 3}, std::move(g1));

  Partition level2 = Partition::TopLevel(4, 4);

  std::vector<Partition> levels;
  levels.push_back(std::move(level0));
  levels.push_back(std::move(level1));
  levels.push_back(std::move(level2));
  return GroupHierarchy(std::move(levels));
}

TEST(ReleasePlanTest, RollupMatchesDirectScanOnHandBuiltHierarchy) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const ReleasePlan plan = ReleasePlan::Build(g, h);

  ASSERT_EQ(plan.num_levels(), h.num_levels());
  EXPECT_EQ(plan.num_edges(), g.num_edges());
  for (int lvl = 0; lvl < h.num_levels(); ++lvl) {
    EXPECT_EQ(ToVec(plan.GroupDegreeSums(lvl)), h.level(lvl).GroupDegreeSums(g))
        << "level " << lvl;
    EXPECT_EQ(plan.CountSensitivity(lvl), h.level(lvl).MaxGroupDegreeSum(g))
        << "level " << lvl;
  }
  // Known values: left degrees 2,1,2,1 / right degrees 2,1,1,2.
  EXPECT_EQ(ToVec(plan.GroupDegreeSums(0)),
            (std::vector<EdgeCount>{2, 1, 2, 1, 2, 1, 1, 2}));
  EXPECT_EQ(ToVec(plan.GroupDegreeSums(1)), (std::vector<EdgeCount>{3, 3, 3, 3}));
  EXPECT_EQ(ToVec(plan.GroupDegreeSums(2)), (std::vector<EdgeCount>{6, 6}));
  EXPECT_EQ(plan.CountSensitivity(2), g.num_edges());
}

TEST(ReleasePlanTest, BuildPerformsExactlyOneNodeScan) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const std::uint64_t before = Partition::DegreeSumScanCount();
  const ReleasePlan plan = ReleasePlan::Build(g, h);
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 1u);
  (void)plan;
}

TEST(ReleasePlanTest, PlannedReleaseAllScansTheGraphOnce) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng rng(7);
  const std::uint64_t before = Partition::DegreeSumScanCount();
  const MultiLevelRelease r = engine.ReleaseAll(g, h, rng);
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 1u);
  EXPECT_EQ(r.num_levels(), h.num_levels());
}

TEST(ReleasePlanTest, LegacyReleaseAllScansPerLevel) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const GroupDpEngine engine{ReleaseConfig{}};
  Rng rng(7);
  const std::uint64_t before = Partition::DegreeSumScanCount();
  (void)engine.ReleaseAllLegacy(g, h, rng);
  // Three scans per level (count sensitivity, group counts, vector
  // sensitivity) — the waste the plan eliminates.
  EXPECT_EQ(Partition::DegreeSumScanCount() - before,
            3u * static_cast<std::uint64_t>(h.num_levels()));
}

TEST(ReleasePlanTest, MatchesDirectScansOnSpecializerHierarchy) {
  Rng graph_rng(3);
  const BipartiteGraph g =
      gdp::graph::GenerateUniformRandom(96, 80, 1500, graph_rng);
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = 5;
  const gdp::hier::Specializer spec(cfg);
  Rng rng(11);
  const GroupHierarchy h = spec.BuildHierarchy(g, rng).hierarchy;

  const ReleasePlan plan = ReleasePlan::Build(g, h);
  for (int lvl = 0; lvl < h.num_levels(); ++lvl) {
    EXPECT_EQ(ToVec(plan.GroupDegreeSums(lvl)), h.level(lvl).GroupDegreeSums(g))
        << "level " << lvl;
  }
  EXPECT_EQ(ToVec(plan.LevelSensitivities()), CountSensitivities(g, h));
}

TEST(ReleasePlanTest, ShardedBuildExactlyEqualsSequentialBuild) {
  Rng graph_rng(3);
  const BipartiteGraph g =
      gdp::graph::GenerateUniformRandom(96, 80, 1500, graph_rng);
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = 5;
  const gdp::hier::Specializer spec(cfg);
  Rng rng(11);
  const GroupHierarchy h = spec.BuildHierarchy(g, rng).hierarchy;

  const ReleasePlan sequential = ReleasePlan::Build(g, h);
  gdp::common::ThreadPool pool(4);
  // grain 16 over 176 nodes → 11 shards: the real sharded path, with exact
  // integer equality demanded level by level.
  const std::uint64_t before = Partition::DegreeSumScanCount();
  const ReleasePlan sharded = ReleasePlan::Build(g, h, pool, 16);
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 1u);
  ASSERT_EQ(sharded.num_levels(), sequential.num_levels());
  EXPECT_EQ(sharded.num_edges(), sequential.num_edges());
  for (int lvl = 0; lvl < sequential.num_levels(); ++lvl) {
    EXPECT_EQ(ToVec(sharded.GroupDegreeSums(lvl)), ToVec(sequential.GroupDegreeSums(lvl)))
        << "level " << lvl;
  }
  EXPECT_EQ(ToVec(sharded.LevelSensitivities()), ToVec(sequential.LevelSensitivities()));
}

TEST(ReleasePlanTest, VectorSensitivityMatchesSqrtTwoBound) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const ReleasePlan plan = ReleasePlan::Build(g, h);
  for (int lvl = 0; lvl < h.num_levels(); ++lvl) {
    EXPECT_DOUBLE_EQ(
        plan.VectorSensitivity(lvl),
        std::sqrt(2.0) * static_cast<double>(plan.CountSensitivity(lvl)));
  }
}

TEST(ReleasePlanTest, VectorSensitivityThrowsOnEdgelessGraph) {
  const BipartiteGraph g(4, 4, {});
  const GroupHierarchy h = HandHierarchy();
  const ReleasePlan plan = ReleasePlan::Build(g, h);
  EXPECT_EQ(plan.CountSensitivity(1), 0u);
  EXPECT_THROW((void)plan.VectorSensitivity(1), std::invalid_argument);
}

TEST(ReleasePlanTest, LevelAccessorsValidateRange) {
  const ReleasePlan plan = ReleasePlan::Build(HandGraph(), HandHierarchy());
  EXPECT_THROW((void)plan.GroupDegreeSums(-1), std::out_of_range);
  EXPECT_THROW((void)plan.GroupDegreeSums(3), std::out_of_range);
  EXPECT_THROW((void)plan.CountSensitivity(3), std::out_of_range);
}

TEST(ReleasePlanTest, BrokenParentLinksFallBackToDirectScan) {
  // validate=false hierarchy whose level-0 parents are in-range but WRONG
  // (left node 0 claims level-1 group 1 instead of 0).  The rollup's size
  // conservation check must reject it and scan directly — a mis-rollup here
  // would understate the sensitivity and under-noise the release.
  const BipartiteGraph g = HandGraph();

  std::vector<GroupInfo> g0;
  for (GroupId parent : {1u, 0u, 1u, 1u}) {  // node 0's parent is wrong
    g0.push_back(GroupInfo{Side::kLeft, 1, parent});
  }
  for (GroupId parent : {2u, 2u, 3u, 3u}) {
    g0.push_back(GroupInfo{Side::kRight, 1, parent});
  }
  Partition level0({0, 1, 2, 3}, {4, 5, 6, 7}, std::move(g0));
  std::vector<GroupInfo> g1{GroupInfo{Side::kLeft, 2, 0},
                            GroupInfo{Side::kLeft, 2, 0},
                            GroupInfo{Side::kRight, 2, 1},
                            GroupInfo{Side::kRight, 2, 1}};
  Partition level1({0, 0, 1, 1}, {2, 2, 3, 3}, std::move(g1));
  std::vector<Partition> levels;
  levels.push_back(std::move(level0));
  levels.push_back(std::move(level1));
  levels.push_back(Partition::TopLevel(4, 4));
  const GroupHierarchy h(std::move(levels), /*validate=*/false);

  const ReleasePlan plan = ReleasePlan::Build(g, h);
  for (int lvl = 0; lvl < h.num_levels(); ++lvl) {
    EXPECT_EQ(ToVec(plan.GroupDegreeSums(lvl)), h.level(lvl).GroupDegreeSums(g))
        << "level " << lvl;
  }
}

TEST(ReleasePlanTest, HierarchyLevelSensitivitiesUseSinglePass) {
  const BipartiteGraph g = HandGraph();
  const GroupHierarchy h = HandHierarchy();
  const std::uint64_t before = Partition::DegreeSumScanCount();
  const auto sens = h.LevelSensitivities(g);
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 1u);
  EXPECT_EQ(sens, (std::vector<EdgeCount>{2, 3, 6}));
}

}  // namespace
}  // namespace gdp::core
