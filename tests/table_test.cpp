#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gdp::common {
namespace {

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TextTableTest, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"1"}), std::invalid_argument);
  EXPECT_THROW(t.AddRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTableTest, CountsRowsAndCols) {
  TextTable t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2", "3"});
  t.AddRow({"4", "5", "6"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, PrintAlignsColumns) {
  TextTable t({"name", "v"});
  t.AddRow({"longer_name", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header line must pad "name" to the width of "longer_name".
  EXPECT_NE(out.find("name         v"), std::string::npos) << out;
  EXPECT_NE(out.find("longer_name  1"), std::string::npos) << out;
}

TEST(TextTableTest, PrintTsvUsesTabs) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintTsv(os);
  EXPECT_EQ(os.str(), "a\tb\n1\t2\n");
}

TEST(FormatDoubleTest, RespectsDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(FormatPercentTest, ConvertsFraction) {
  EXPECT_EQ(FormatPercent(0.0213, 2), "2.13%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.001234, 2), "0.12%");
}

}  // namespace
}  // namespace gdp::common
