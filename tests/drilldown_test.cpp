#include "core/drilldown.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/group_dp_engine.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::graph::Side;

struct Fixture {
  BipartiteGraph graph;
  gdp::hier::GroupHierarchy hierarchy;
  MultiLevelRelease release;
};

Fixture MakeFixture() {
  Rng grng(3);
  BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 600, grng);
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = 4;
  const gdp::hier::Specializer spec(cfg);
  Rng srng(5);
  auto hierarchy = spec.BuildHierarchy(g, srng).hierarchy;
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(7);
  auto release = engine.ReleaseAll(g, hierarchy, rng);
  return Fixture{std::move(g), std::move(hierarchy), std::move(release)};
}

TEST(DrillDownTest, ChainDescendsFromCoarseToFine) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  const auto chain = DrillDown(f.release, index, Side::kLeft, 7, 4, 0);
  ASSERT_EQ(chain.size(), 5u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].level, 4 - static_cast<int>(i));
  }
  // Group sizes shrink (weakly) down the chain.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i].group_size, chain[i - 1].group_size);
  }
  // Bottom of the chain is the node's singleton.
  EXPECT_EQ(chain.back().group_size, 1u);
}

TEST(DrillDownTest, EntriesMatchReleasedCounts) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  const auto chain = DrillDown(f.release, index, Side::kRight, 3, 4, 1);
  for (const auto& entry : chain) {
    const auto g = f.hierarchy.level(entry.level).GroupOf(Side::kRight, 3);
    EXPECT_EQ(entry.group, g);
    EXPECT_DOUBLE_EQ(entry.noisy_count,
                     f.release.level(entry.level).noisy_group_counts[g]);
    EXPECT_DOUBLE_EQ(entry.true_count,
                     f.release.level(entry.level).true_group_counts[g]);
  }
}

TEST(DrillDownTest, TrueCountIsIncidentEdgeCount) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  const auto chain = DrillDown(f.release, index, Side::kLeft, 0, 2, 2);
  ASSERT_EQ(chain.size(), 1u);
  const auto& level = f.hierarchy.level(2);
  const auto sums = level.GroupDegreeSums(f.graph);
  EXPECT_DOUBLE_EQ(chain[0].true_count,
                   static_cast<double>(sums[chain[0].group]));
}

TEST(DrillDownTest, ValidatesLevelRange) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  EXPECT_THROW((void)DrillDown(f.release, index, Side::kLeft, 0, 5, 0),
               std::invalid_argument);
  EXPECT_THROW((void)DrillDown(f.release, index, Side::kLeft, 0, 2, 3),
               std::invalid_argument);
  EXPECT_THROW((void)DrillDown(f.release, index, Side::kLeft, 0, 2, -1),
               std::invalid_argument);
}

TEST(DrillDownTest, RejectsReleaseWithoutGroupCounts) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  Rng rng(11);
  const MultiLevelRelease bare = engine.ReleaseAll(f.graph, f.hierarchy, rng);
  EXPECT_THROW((void)DrillDown(bare, index, Side::kLeft, 0, 4, 0),
               std::invalid_argument);
}

TEST(DrillDownTest, StrippedReleaseYieldsZeroTruth) {
  const Fixture f = MakeFixture();
  const gdp::hier::HierarchyIndex index(f.hierarchy);
  const MultiLevelRelease pub = f.release.StripTruth();
  const auto chain = DrillDown(pub, index, Side::kLeft, 2, 4, 0);
  for (const auto& entry : chain) {
    EXPECT_EQ(entry.true_count, 0.0);
  }
}

TEST(ReleaseAllWithBudgetsTest, PerLevelEpsilonsChangeNoiseScales) {
  const Fixture f = MakeFixture();
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  // Increasing epsilon per level: noise scale relative to the uniform
  // release must shrink at generously-budgeted levels.
  const std::vector<double> budgets{0.1, 0.2, 0.4, 0.8, 1.6};
  Rng rng(13);
  const MultiLevelRelease planned =
      engine.ReleaseAllWithBudgets(f.graph, f.hierarchy, budgets, rng);
  Rng rng2(13);
  const MultiLevelRelease uniform = engine.ReleaseAll(f.graph, f.hierarchy, rng2);
  // Level 0 budget (0.1) < uniform (0.999): more noise.
  EXPECT_GT(planned.level(0).noise_stddev, uniform.level(0).noise_stddev);
  // Level 4 budget (1.6) > uniform: less noise.
  EXPECT_LT(planned.level(4).noise_stddev, uniform.level(4).noise_stddev);
}

TEST(ReleaseAllWithBudgetsTest, ValidatesBudgetVector) {
  const Fixture f = MakeFixture();
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(17);
  const std::vector<double> too_short{0.5, 0.5};
  EXPECT_THROW((void)engine.ReleaseAllWithBudgets(f.graph, f.hierarchy,
                                                  too_short, rng),
               std::invalid_argument);
  const std::vector<double> bad{0.5, 0.5, -1.0, 0.5, 0.5};
  EXPECT_THROW(
      (void)engine.ReleaseAllWithBudgets(f.graph, f.hierarchy, bad, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace gdp::core
