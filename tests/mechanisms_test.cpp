#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/group_dp_engine.hpp"
#include "dp/discrete_gaussian.hpp"
#include "dp/gaussian.hpp"
#include "dp/geometric.hpp"
#include "dp/laplace.hpp"
#include "dp/randomized_response.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;
using gdp::common::RunningStats;

// ---------- parameter types ----------

TEST(EpsilonTest, RejectsNonPositiveAndHuge) {
  EXPECT_THROW(Epsilon(0.0), std::invalid_argument);
  EXPECT_THROW(Epsilon(-1.0), std::invalid_argument);
  EXPECT_THROW(Epsilon(1e10), std::invalid_argument);
  EXPECT_NO_THROW(Epsilon(0.999));
}

TEST(DeltaTest, RejectsOutOfRange) {
  EXPECT_THROW(Delta(0.0), std::invalid_argument);
  EXPECT_THROW(Delta(1.0), std::invalid_argument);
  EXPECT_NO_THROW(Delta(1e-5));
}

TEST(PrivacyParamsTest, PureDpHasNoDelta) {
  const auto p = PrivacyParams::PureDp(Epsilon(1.0));
  EXPECT_FALSE(p.has_delta());
  EXPECT_EQ(p.delta_or_zero(), 0.0);
  EXPECT_THROW((void)p.delta(), std::logic_error);
}

TEST(PrivacyParamsTest, ApproxDpCarriesDelta) {
  const auto p = PrivacyParams::ApproxDp(Epsilon(1.0), Delta(1e-6));
  EXPECT_TRUE(p.has_delta());
  EXPECT_DOUBLE_EQ(p.delta().value(), 1e-6);
  EXPECT_DOUBLE_EQ(p.delta_or_zero(), 1e-6);
}

TEST(SensitivityTest, RejectsBadValues) {
  EXPECT_THROW(L1Sensitivity(0.0), std::invalid_argument);
  EXPECT_THROW(L2Sensitivity(-3.0), std::invalid_argument);
  EXPECT_NO_THROW(L1Sensitivity(1.0));
  EXPECT_NO_THROW(L2Sensitivity(6384117.0));
}

// ---------- Laplace ----------

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  const LaplaceMechanism m(Epsilon(0.5), L1Sensitivity(10.0));
  EXPECT_DOUBLE_EQ(m.scale(), 20.0);
  EXPECT_NEAR(m.NoiseStddev(), 20.0 * std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.ExpectedAbsNoise(), 20.0);
  EXPECT_STREQ(m.Name(), "laplace");
}

TEST(LaplaceMechanismTest, NoiseCentredOnTruth) {
  const LaplaceMechanism m(Epsilon(1.0), L1Sensitivity(1.0));
  Rng rng(21);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.Add(m.AddNoise(100.0, rng));
  }
  EXPECT_NEAR(s.mean(), 100.0, 0.05);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 0.05);
}

TEST(LaplaceMechanismTest, VectorOverloadPerturbsEachEntry) {
  const LaplaceMechanism m(Epsilon(10.0), L1Sensitivity(0.001));
  Rng rng(22);
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> noisy = m.AddNoise(truth, rng);
  ASSERT_EQ(noisy.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(noisy[i], truth[i], 0.1);
    EXPECT_NE(noisy[i], truth[i]);
  }
}

// Empirical DP check: the likelihood ratio between outputs on adjacent data
// must stay within e^eps (smoke-tested on binned output frequencies).
TEST(LaplaceMechanismTest, EmpiricalPrivacyRatioBounded) {
  const double eps = 1.0;
  const LaplaceMechanism m(Epsilon(eps), L1Sensitivity(1.0));
  Rng rng(23);
  constexpr int kN = 400000;
  constexpr int kBins = 20;
  // Outputs binned over [-5, 5] around each centre; adjacent datasets have
  // true answers 0 and 1.
  std::vector<int> h0(kBins, 0);
  std::vector<int> h1(kBins, 0);
  const auto bin_of = [&](double x) {
    const int b = static_cast<int>((x + 5.0) / 10.0 * kBins);
    return std::clamp(b, 0, kBins - 1);
  };
  for (int i = 0; i < kN; ++i) {
    ++h0[bin_of(m.AddNoise(0.0, rng))];
    ++h1[bin_of(m.AddNoise(1.0, rng))];
  }
  for (int b = 0; b < kBins; ++b) {
    if (h0[b] < 500 || h1[b] < 500) {
      continue;  // skip bins too rare for a stable ratio
    }
    const double ratio = static_cast<double>(h0[b]) / h1[b];
    EXPECT_LT(ratio, std::exp(eps) * 1.15) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-eps) / 1.15) << "bin " << b;
  }
}

// ---------- Gaussian ----------

TEST(ClassicGaussianSigmaTest, MatchesFormula) {
  const double sigma =
      ClassicGaussianSigma(Epsilon(0.999), Delta(1e-5), L2Sensitivity(100.0));
  const double expected = 100.0 * std::sqrt(2.0 * std::log(1.25 / 1e-5)) / 0.999;
  EXPECT_NEAR(sigma, expected, 1e-9);
}

TEST(ClassicGaussianSigmaTest, RejectsLargeEpsilon) {
  EXPECT_THROW(
      (void)ClassicGaussianSigma(Epsilon(2.0), Delta(1e-5), L2Sensitivity(1.0)),
      std::invalid_argument);
}

TEST(GaussianDeltaForSigmaTest, DecreasesInSigma) {
  const Epsilon eps(1.0);
  const L2Sensitivity d(1.0);
  const double d1 = GaussianDeltaForSigma(0.5, eps, d);
  const double d2 = GaussianDeltaForSigma(1.0, eps, d);
  const double d3 = GaussianDeltaForSigma(2.0, eps, d);
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
}

TEST(AnalyticGaussianSigmaTest, AchievesTargetDelta) {
  const Epsilon eps(0.7);
  const Delta delta(1e-6);
  const L2Sensitivity d(42.0);
  const double sigma = AnalyticGaussianSigma(eps, delta, d);
  const double achieved = GaussianDeltaForSigma(sigma, eps, d);
  EXPECT_LE(achieved, delta.value() * 1.0001);
  EXPECT_GE(achieved, delta.value() * 0.99);
}

TEST(AnalyticGaussianSigmaTest, TighterThanClassicForSmallEps) {
  const Epsilon eps(0.5);
  const Delta delta(1e-5);
  const L2Sensitivity d(1.0);
  EXPECT_LT(AnalyticGaussianSigma(eps, delta, d),
            ClassicGaussianSigma(eps, delta, d));
}

TEST(AnalyticGaussianSigmaTest, WorksAboveEpsilonOne) {
  const double sigma =
      AnalyticGaussianSigma(Epsilon(4.0), Delta(1e-5), L2Sensitivity(1.0));
  EXPECT_GT(sigma, 0.0);
  const double achieved =
      GaussianDeltaForSigma(sigma, Epsilon(4.0), L2Sensitivity(1.0));
  EXPECT_LE(achieved, 1e-5 * 1.0001);
}

TEST(GaussianCalibrationBoundaryTest, FactorySwitchesToAnalyticStrictlyAboveOne) {
  // The classic bound (Dwork–Roth Thm 3.22) is valid only for ε ≤ 1.  The
  // factory used to admit ε ∈ (1, 1.0001) into the classic branch; pin the
  // tightened boundary on both sides.
  const auto at_one =
      gdp::core::MakeMechanism(gdp::core::NoiseKind::kGaussian, 1.0, 1e-5, 2.0);
  const auto* g_one = dynamic_cast<const GaussianMechanism*>(at_one.get());
  ASSERT_NE(g_one, nullptr);
  EXPECT_EQ(g_one->calibration(), GaussianCalibration::kClassic);

  const auto just_above = gdp::core::MakeMechanism(
      gdp::core::NoiseKind::kGaussian, 1.00005, 1e-5, 2.0);
  const auto* g_above = dynamic_cast<const GaussianMechanism*>(just_above.get());
  ASSERT_NE(g_above, nullptr);
  EXPECT_EQ(g_above->calibration(), GaussianCalibration::kAnalytic);

  // The paper's εg = 0.999 stays on the classic branch.
  const auto paper = gdp::core::MakeMechanism(gdp::core::NoiseKind::kGaussian,
                                              0.999, 1e-5, 2.0);
  const auto* g_paper = dynamic_cast<const GaussianMechanism*>(paper.get());
  ASSERT_NE(g_paper, nullptr);
  EXPECT_EQ(g_paper->calibration(), GaussianCalibration::kClassic);

  // The boundary holds at the calibration primitive too, not just the
  // factory: requesting classic above ε = 1 is an error, ε = 1 is not.
  EXPECT_NO_THROW((void)ClassicGaussianSigma(Epsilon(1.0), Delta(1e-5),
                                             L2Sensitivity(2.0)));
  EXPECT_THROW((void)ClassicGaussianSigma(Epsilon(1.00005), Delta(1e-5),
                                          L2Sensitivity(2.0)),
               std::invalid_argument);
  EXPECT_THROW(GaussianMechanism(Epsilon(1.00005), Delta(1e-5),
                                 L2Sensitivity(2.0)),
               std::invalid_argument);
}

TEST(GaussianMechanismTest, ClassicCalibrationByDefault) {
  const GaussianMechanism m(Epsilon(0.9), Delta(1e-5), L2Sensitivity(10.0));
  EXPECT_EQ(m.calibration(), GaussianCalibration::kClassic);
  EXPECT_NEAR(m.sigma(),
              ClassicGaussianSigma(Epsilon(0.9), Delta(1e-5), L2Sensitivity(10.0)),
              1e-12);
  EXPECT_STREQ(m.Name(), "gaussian");
}

TEST(GaussianMechanismTest, NoiseMomentsMatchSigma) {
  const GaussianMechanism m(Epsilon(0.999), Delta(1e-5), L2Sensitivity(1.0));
  Rng rng(24);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.Add(m.AddNoise(0.0, rng));
  }
  EXPECT_NEAR(s.mean(), 0.0, m.sigma() * 0.02);
  EXPECT_NEAR(s.stddev(), m.sigma(), m.sigma() * 0.02);
}

TEST(GaussianMechanismTest, ExpectedAbsNoiseFormula) {
  const GaussianMechanism m(Epsilon(0.5), Delta(1e-5), L2Sensitivity(3.0));
  EXPECT_NEAR(m.ExpectedAbsNoise(), m.sigma() * std::sqrt(2.0 / M_PI), 1e-12);
}

// ---------- Geometric ----------

TEST(GeometricMechanismTest, OutputIsIntegerShifted) {
  const GeometricMechanism m(Epsilon(0.5), L1Sensitivity(2.0));
  Rng rng(25);
  for (int i = 0; i < 1000; ++i) {
    const double noisy = m.AddNoise(10.0, rng);
    EXPECT_DOUBLE_EQ(noisy, std::round(noisy));
  }
  EXPECT_STREQ(m.Name(), "geometric");
}

TEST(GeometricMechanismTest, StddevMatchesFormula) {
  const GeometricMechanism m(Epsilon(1.0), L1Sensitivity(1.0));
  Rng rng(26);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.Add(m.AddNoise(0.0, rng));
  }
  EXPECT_NEAR(s.stddev(), m.NoiseStddev(), m.NoiseStddev() * 0.03);
}

// ---------- Discrete Gaussian ----------

TEST(DiscreteGaussianMechanismTest, IntegerOutputAndSigma) {
  const DiscreteGaussianMechanism m(Epsilon(1.0), Delta(1e-5),
                                    L2Sensitivity(5.0));
  EXPECT_GT(m.sigma(), 0.0);
  Rng rng(27);
  for (int i = 0; i < 500; ++i) {
    const double noisy = m.AddNoise(7.0, rng);
    EXPECT_DOUBLE_EQ(noisy, std::round(noisy));
  }
  EXPECT_STREQ(m.Name(), "discrete_gaussian");
}

TEST(DiscreteGaussianMechanismTest, EmpiricalStddevNearSigma) {
  const DiscreteGaussianMechanism m(Epsilon(0.8), Delta(1e-5),
                                    L2Sensitivity(10.0));
  Rng rng(28);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(m.AddNoise(0.0, rng));
  }
  EXPECT_NEAR(s.stddev(), m.sigma(), m.sigma() * 0.05);
}

// ---------- Randomized Response ----------

TEST(RandomizedResponseTest, TruthProbabilityFormula) {
  const RandomizedResponse rr(Epsilon(std::log(3.0)));
  EXPECT_NEAR(rr.truth_probability(), 0.75, 1e-12);
}

TEST(RandomizedResponseTest, DebiasRecoversFrequency) {
  const RandomizedResponse rr(Epsilon(1.0));
  Rng rng(29);
  constexpr int kN = 200000;
  const double true_freq = 0.3;
  int reported_ones = 0;
  for (int i = 0; i < kN; ++i) {
    const bool bit = rng.Bernoulli(true_freq);
    reported_ones += rr.Perturb(bit, rng) ? 1 : 0;
  }
  const double estimate =
      rr.DebiasFrequency(static_cast<double>(reported_ones) / kN);
  EXPECT_NEAR(estimate, true_freq, 0.01);
}

TEST(RandomizedResponseTest, HighEpsilonNearlyAlwaysTruthful) {
  const RandomizedResponse rr(Epsilon(10.0));
  Rng rng(30);
  int flips = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rr.Perturb(true, rng) != true) {
      ++flips;
    }
  }
  EXPECT_LT(flips, 10);
}

}  // namespace
}  // namespace gdp::dp
