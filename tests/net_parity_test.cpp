// Socket-vs-in-process parity: the network front end must be an auditable
// veneer, not a second implementation.  The same request sequence against
// (a) a Server + net::Client and (b) direct DisclosureService calls on the
// batch driver's noise stream (Rng(seed).Fork(1)) must produce bit-identical
// responses, identical odometer state — and, at the CLI level, byte-identical
// results files from `gdp_tool serve --requests` and
// `gdp_tool serve --listen` + `gdp_tool client --requests`.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"

namespace gdp::net {
namespace {

using gdp::common::Rng;
using gdp::serve::DisclosureService;
using gdp::serve::TenantProfile;

gdp::graph::BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 200;
  p.num_right = 300;
  p.num_edges = 1200;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 4;
  spec.hierarchy.arity = 4;
  return spec;
}

std::unique_ptr<DisclosureService> MakeService() {
  auto svc = std::make_unique<DisclosureService>(4);
  svc->catalog().Register(
      "dblp", gdp::serve::Dataset{TestGraph(), SmallSpec(), 7, {}, {}});
  svc->broker().Register("alice", TenantProfile{50.0, 0.2, 0});
  svc->broker().Register("bob", TenantProfile{50.0, 0.2, 2});
  svc->odometer().SetBudget("dblp", 200.0, 0.4);
  return svc;
}

wire::WireBudget Budget(double eps) {
  wire::WireBudget b;
  b.epsilon_g = eps;
  return b;
}

// Drive the SAME mixed request sequence against a server (via the client)
// and against the service directly on the batch driver's stream; every
// response must re-encode to the same bytes.
TEST(NetParityTest, SocketResponsesAreBitIdenticalToDirectCalls) {
  constexpr std::uint64_t kSeed = 123;

  auto remote_svc = MakeService();
  ServerConfig config;
  config.seed = kSeed;
  Server server(*remote_svc, config);
  Client client(server.port());

  auto local_svc = MakeService();
  Rng local_rng = Rng(kSeed).Fork(1);

  // 1. Serve.
  wire::ServeRequest serve_req;
  serve_req.tenant = "alice";
  serve_req.dataset = "dblp";
  serve_req.budget = Budget(0.3);
  const auto remote_serve = client.Serve(serve_req);
  ASSERT_TRUE(remote_serve.ok());
  const wire::ServeOutcome local_serve = wire::ServeOutcome::FromResult(
      local_svc->Serve("alice", "dblp", serve_req.budget.ToBudgetSpec(),
                       local_rng));
  EXPECT_EQ(wire::Encode(remote_serve.value), wire::Encode(local_serve));

  // 2. Sweep (two budget points; draw order inside must match too).
  wire::SweepRequest sweep_req;
  sweep_req.tenant = "bob";
  sweep_req.dataset = "dblp";
  sweep_req.budgets = {Budget(0.2), Budget(0.35)};
  const auto remote_sweep = client.Sweep(sweep_req);
  ASSERT_TRUE(remote_sweep.ok());
  wire::SweepResponse local_sweep;
  const std::vector<gdp::core::BudgetSpec> sweep_budgets = {
      sweep_req.budgets[0].ToBudgetSpec(), sweep_req.budgets[1].ToBudgetSpec()};
  for (const gdp::serve::ServeResult& r :
       local_svc->ServeSweep("bob", "dblp", sweep_budgets, local_rng)) {
    local_sweep.outcomes.push_back(wire::ServeOutcome::FromResult(r));
  }
  EXPECT_EQ(wire::Encode(remote_sweep.value), wire::Encode(local_sweep));

  // 3. Drilldown.
  wire::DrilldownRequest drill_req;
  drill_req.tenant = "bob";
  drill_req.dataset = "dblp";
  drill_req.budget = Budget(0.25);
  drill_req.side = 0;
  drill_req.node = 11;
  const auto remote_drill = client.Drilldown(drill_req);
  ASSERT_TRUE(remote_drill.ok());
  const gdp::serve::DrilldownResult local_dr = local_svc->ServeDrilldown(
      "bob", "dblp", drill_req.budget.ToBudgetSpec(), gdp::graph::Side::kLeft,
      11, local_rng);
  wire::DrilldownResponse local_drill;
  local_drill.outcome = wire::ServeOutcome::FromResult(local_dr.serve);
  for (const gdp::core::DrillDownEntry& e : local_dr.chain) {
    local_drill.chain.push_back(
        {e.level, e.group, e.group_size, e.noisy_count, e.true_count});
  }
  EXPECT_EQ(wire::Encode(remote_drill.value), wire::Encode(local_drill));

  // 4. Answer.
  wire::AnswerRequest ans_req;
  ans_req.tenant = "alice";
  ans_req.dataset = "dblp";
  ans_req.budget = Budget(0.3);
  ans_req.queries = {wire::WireQuery{0, 0, 0}, wire::WireQuery{2, 1, 8}};
  const auto remote_ans = client.Answer(ans_req);
  ASSERT_TRUE(remote_ans.ok());
  std::vector<gdp::serve::QuerySpec> specs(2);
  specs[0].kind = gdp::serve::QuerySpec::Kind::kAssociationCount;
  specs[1].kind = gdp::serve::QuerySpec::Kind::kDegreeHistogram;
  specs[1].side = gdp::graph::Side::kRight;
  specs[1].max_degree = 8;
  const gdp::serve::AnswerResult local_ar = local_svc->ServeAnswer(
      "alice", "dblp", ans_req.budget.ToBudgetSpec(), specs, local_rng);
  wire::AnswerResponse local_ans;
  local_ans.outcome = wire::ServeOutcome::FromResult(local_ar.serve);
  for (const gdp::query::QueryRunResult& r : local_ar.results) {
    local_ans.results.push_back({r.query_name, r.sensitivity, r.noise_stddev,
                                 r.truth, r.noisy, r.mean_rer, r.mae, r.rmse});
  }
  EXPECT_EQ(wire::Encode(remote_ans.value), wire::Encode(local_ans));

  // Identical charges on both sides: the odometer (the audit spine's
  // cross-tenant view) must agree field for field.
  const auto remote_odo = remote_svc->odometer().All();
  const auto local_odo = local_svc->odometer().All();
  ASSERT_EQ(remote_odo.size(), local_odo.size());
  for (std::size_t i = 0; i < remote_odo.size(); ++i) {
    EXPECT_EQ(remote_odo[i].dataset, local_odo[i].dataset);
    EXPECT_EQ(remote_odo[i].charges, local_odo[i].charges);
    EXPECT_EQ(remote_odo[i].epsilon_spent, local_odo[i].epsilon_spent);
    EXPECT_EQ(remote_odo[i].delta_spent, local_odo[i].delta_spent);
    EXPECT_EQ(remote_odo[i].accounted_epsilon, local_odo[i].accounted_epsilon);
    EXPECT_EQ(remote_odo[i].accounted_delta, local_odo[i].accounted_delta);
    EXPECT_EQ(remote_odo[i].retired, local_odo[i].retired);
  }
}

// ---------- CLI-level parity: serve --requests vs serve --listen + client --

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(NetParityTest, CliBatchAndSocketResultsFilesAreByteIdentical) {
  const std::string dir = ::testing::TempDir();
  const std::string graph = dir + "/parity_graph.tsv";
  const std::string tenants = dir + "/parity_tenants.tsv";
  const std::string requests = dir + "/parity_requests.tsv";
  const std::string batch_out = dir + "/parity_batch.tsv";
  const std::string socket_out = dir + "/parity_socket.tsv";
  const std::string port_file = dir + "/parity_port";
  ::unlink(port_file.c_str());

  {
    std::ostringstream sink;
    ASSERT_EQ(gdp::cli::Dispatch({"generate", "--out", graph, "--left", "200",
                                  "--right", "300", "--edges", "1200",
                                  "--seed", "3"},
                                 sink),
              0);
  }
  WriteFile(tenants, "alice\t50\t0.2\t0\nbob\t50\t0.2\t2\n");
  WriteFile(requests, "alice\t0.3\nbob\t0.4\t1e-5\nalice\t0.25\nbob\t0.2\n");

  const std::vector<std::string> common = {"--graph",  graph, "--tenants",
                                           tenants,    "--depth", "4",
                                           "--arity",  "4",   "--seed", "9"};

  // Batch driver.
  {
    std::vector<std::string> argv = {"serve", "--requests", requests, "--out",
                                     batch_out};
    argv.insert(argv.end(), common.begin(), common.end());
    std::ostringstream sink;
    ASSERT_EQ(gdp::cli::Dispatch(argv, sink), 0) << sink.str();
  }

  // Socket driver: the same serve config listening on an ephemeral port,
  // exiting after exactly the batch's request count.
  std::ostringstream server_log;
  std::thread server_thread([&common, &port_file, &server_log] {
    std::vector<std::string> argv = {"serve",        "--listen", "0",
                                     "--port-file",  port_file,  "--workers",
                                     "2",            "--max-requests", "4"};
    argv.insert(argv.end(), common.begin(), common.end());
    EXPECT_EQ(gdp::cli::Dispatch(argv, server_log), 0) << server_log.str();
  });
  std::string port;
  for (int i = 0; i < 1000 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::ifstream in(port_file);
    std::getline(in, port);
  }
  ASSERT_FALSE(port.empty()) << "server never wrote " << port_file;
  {
    std::ostringstream sink;
    ASSERT_EQ(gdp::cli::Dispatch({"client", "--connect", "127.0.0.1:" + port,
                                  "--requests", requests, "--out", socket_out},
                                 sink),
              0)
        << sink.str();
  }
  server_thread.join();

  const std::string batch_bytes = Slurp(batch_out);
  const std::string socket_bytes = Slurp(socket_out);
  EXPECT_FALSE(batch_bytes.empty());
  EXPECT_EQ(batch_bytes, socket_bytes);
  ::unlink(port_file.c_str());
}

}  // namespace
}  // namespace gdp::net
