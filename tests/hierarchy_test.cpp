#include "hier/hierarchy.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::hier {
namespace {

using gdp::graph::BipartiteGraph;

// A hand-built 3-level hierarchy over 2 left + 2 right nodes:
// level 2 = top (2 groups), level 1 = left split (3 groups), level 0 = singletons.
std::vector<Partition> TinyLevels() {
  Partition top = Partition::TopLevel(2, 2);
  Partition mid({0, 1}, {2, 2},
                {GroupInfo{Side::kLeft, 1, 0}, GroupInfo{Side::kLeft, 1, 0},
                 GroupInfo{Side::kRight, 2, 1}});
  Partition bottom({0, 1}, {2, 3},
                   {GroupInfo{Side::kLeft, 1, 0}, GroupInfo{Side::kLeft, 1, 1},
                    GroupInfo{Side::kRight, 1, 2}, GroupInfo{Side::kRight, 1, 2}});
  std::vector<Partition> levels;
  levels.push_back(std::move(bottom));
  levels.push_back(std::move(mid));
  levels.push_back(std::move(top));
  return levels;
}

TEST(GroupHierarchyTest, ValidHierarchyConstructs) {
  const GroupHierarchy h(TinyLevels());
  EXPECT_EQ(h.depth(), 2);
  EXPECT_EQ(h.num_levels(), 3);
  EXPECT_EQ(h.level(0).num_groups(), 4u);
  EXPECT_EQ(h.level(2).num_groups(), 2u);
}

TEST(GroupHierarchyTest, RejectsTooFewLevels) {
  std::vector<Partition> one;
  one.push_back(Partition::Singletons(2, 2));
  EXPECT_THROW(GroupHierarchy(std::move(one)), std::invalid_argument);
}

TEST(GroupHierarchyTest, RejectsNonSingletonBottom) {
  std::vector<Partition> levels;
  levels.push_back(Partition::TopLevel(2, 2));
  levels.push_back(Partition::TopLevel(2, 2));
  EXPECT_THROW(GroupHierarchy(std::move(levels)), std::invalid_argument);
}

TEST(GroupHierarchyTest, RejectsDimensionMismatchAcrossLevels) {
  std::vector<Partition> levels;
  levels.push_back(Partition::Singletons(2, 2));
  levels.push_back(Partition::TopLevel(3, 2));
  EXPECT_THROW(GroupHierarchy(std::move(levels)), std::invalid_argument);
}

TEST(GroupHierarchyTest, RejectsBrokenRefinement) {
  auto levels = TinyLevels();
  // Corrupt the middle level's parent links: point left groups at the right
  // top group.
  levels[1] = Partition({0, 1}, {2, 2},
                        {GroupInfo{Side::kLeft, 1, 1}, GroupInfo{Side::kLeft, 1, 1},
                         GroupInfo{Side::kRight, 2, 1}});
  EXPECT_THROW(GroupHierarchy(std::move(levels)), std::invalid_argument);
}

TEST(GroupHierarchyTest, ValidateFalseSkipsRefinementCheck) {
  auto levels = TinyLevels();
  levels[1] = Partition({0, 1}, {2, 2},
                        {GroupInfo{Side::kLeft, 1, 1}, GroupInfo{Side::kLeft, 1, 1},
                         GroupInfo{Side::kRight, 2, 1}});
  EXPECT_NO_THROW(GroupHierarchy(std::move(levels), /*validate=*/false));
}

TEST(GroupHierarchyTest, LevelAccessorBounds) {
  const GroupHierarchy h(TinyLevels());
  EXPECT_THROW((void)h.level(-1), std::out_of_range);
  EXPECT_THROW((void)h.level(3), std::out_of_range);
}

TEST(GroupHierarchyTest, LevelSensitivitiesAreMonotoneInLevel) {
  // Sensitivity can only grow with coarser groups (groups merge upward).
  gdp::common::Rng rng(11);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 1000, rng);
  SpecializationConfig cfg;
  cfg.depth = 5;
  cfg.arity = 2;
  const Specializer spec(cfg);
  gdp::common::Rng build_rng(1);
  const auto result = spec.BuildHierarchy(g, build_rng);
  const auto sens = result.hierarchy.LevelSensitivities(g);
  ASSERT_EQ(sens.size(), 6u);
  for (std::size_t i = 1; i < sens.size(); ++i) {
    EXPECT_GE(sens[i], sens[i - 1]) << "level " << i;
  }
  // Top level covers every edge.
  EXPECT_EQ(sens.back(), g.num_edges());
  // Bottom level is the max degree.
  EXPECT_EQ(sens.front(), std::max(g.MaxDegree(Side::kLeft),
                                   g.MaxDegree(Side::kRight)));
}

TEST(GroupHierarchyTest, LevelGroupCountsDescendWithLevel) {
  const GroupHierarchy h(TinyLevels());
  const auto counts = h.LevelGroupCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 2u);
}

}  // namespace
}  // namespace gdp::hier
