#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/stats.hpp"

namespace gdp::graph {
namespace {

using gdp::common::Rng;

TEST(ZipfSamplerTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  const ZipfSampler z(100, 1.5);
  double total = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    total += z.Probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, ProbabilityRatioFollowsPowerLaw) {
  const double s = 2.0;
  const ZipfSampler z(1000, s);
  // P(0)/P(9) = (10/1)^s.
  EXPECT_NEAR(z.Probability(0) / z.Probability(9), std::pow(10.0, s), 1e-9);
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  const ZipfSampler z(50, 0.0);
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_NEAR(z.Probability(k), 1.0 / 50.0, 1e-12);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatch) {
  const ZipfSampler z(10, 1.0);
  Rng rng(3);
  constexpr int kN = 200000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[z.Sample(rng)];
  }
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, z.Probability(k), 0.01);
  }
}

TEST(ZipfSamplerTest, ProbabilityRejectsOutOfRange) {
  const ZipfSampler z(10, 1.0);
  EXPECT_THROW((void)z.Probability(10), std::out_of_range);
}

TEST(DblpParamsTest, FullScaleMatchesPaper) {
  const DblpLikeParams p = DblpFullScaleParams();
  EXPECT_EQ(p.num_left, 1'295'100u);
  EXPECT_EQ(p.num_right, 2'281'341u);
  EXPECT_EQ(p.num_edges, 6'384'117u);
}

TEST(DblpParamsTest, ScalingIsProportional) {
  const DblpLikeParams p = DblpScaledParams(0.1);
  EXPECT_NEAR(p.num_left, 129'510, 2);
  EXPECT_NEAR(p.num_right, 228'134, 2);
  EXPECT_NEAR(p.num_edges, 638'411, 2);
}

TEST(DblpParamsTest, ScalingRejectsBadFraction) {
  EXPECT_THROW((void)DblpScaledParams(0.0), std::invalid_argument);
  EXPECT_THROW((void)DblpScaledParams(1.5), std::invalid_argument);
}

TEST(GenerateDblpLikeTest, ProducesRequestedShape) {
  DblpLikeParams p;
  p.num_left = 2000;
  p.num_right = 3000;
  p.num_edges = 10000;
  Rng rng(17);
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  EXPECT_EQ(g.num_left(), 2000u);
  EXPECT_EQ(g.num_right(), 3000u);
  EXPECT_EQ(g.num_edges(), 10000u);
}

TEST(GenerateDblpLikeTest, NoParallelEdgesByDefault) {
  DblpLikeParams p;
  p.num_left = 500;
  p.num_right = 500;
  p.num_edges = 2000;
  Rng rng(19);
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  std::vector<Edge> edges = g.EdgeList();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
}

TEST(GenerateDblpLikeTest, HeavyTailOnLeftSide) {
  DblpLikeParams p;
  p.num_left = 5000;
  p.num_right = 8000;
  p.num_edges = 25000;
  Rng rng(23);
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  // Zipf productivity should give a clearly unequal degree profile.
  EXPECT_GT(DegreeGini(g, Side::kLeft), 0.25);
  // Max degree far above average degree (25000/5000 = 5).
  EXPECT_GT(g.MaxDegree(Side::kLeft), 50u);
  // ...but no single author may dominate the edge mass (the property that
  // makes the multi-level sensitivity geometry of Figure 1 possible).
  EXPECT_LT(static_cast<double>(g.MaxDegree(Side::kLeft)),
            0.05 * static_cast<double>(g.num_edges()));
}

TEST(GenerateDblpLikeTest, DeterministicUnderSeed) {
  DblpLikeParams p;
  p.num_left = 300;
  p.num_right = 400;
  p.num_edges = 1000;
  Rng rng1(5);
  Rng rng2(5);
  const BipartiteGraph g1 = GenerateDblpLike(p, rng1);
  const BipartiteGraph g2 = GenerateDblpLike(p, rng2);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
}

TEST(GenerateDblpLikeTest, DenseRequestDegradesGracefully) {
  // Request more simple edges than pairs exist: generator must terminate and
  // return at most num_left*num_right edges.
  DblpLikeParams p;
  p.num_left = 10;
  p.num_right = 10;
  p.num_edges = 1000;
  Rng rng(29);
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  EXPECT_LE(g.num_edges(), 100u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(GenerateDblpLikeTest, ParallelEdgesAllowedWhenConfigured) {
  DblpLikeParams p;
  p.num_left = 5;
  p.num_right = 5;
  p.num_edges = 500;
  p.allow_parallel_edges = true;
  Rng rng(31);
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  EXPECT_EQ(g.num_edges(), 500u);  // collisions kept
}

TEST(GenerateUniformRandomTest, ShapeAndDeterminism) {
  Rng rng1(7);
  Rng rng2(7);
  const BipartiteGraph g1 = GenerateUniformRandom(100, 200, 1000, rng1);
  const BipartiteGraph g2 = GenerateUniformRandom(100, 200, 1000, rng2);
  EXPECT_EQ(g1.num_edges(), 1000u);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
}

TEST(GenerateUniformRandomTest, NearUniformDegrees) {
  Rng rng(11);
  const BipartiteGraph g = GenerateUniformRandom(100, 100, 50000, rng);
  // Gini of a Poisson(500) degree profile is tiny.
  EXPECT_LT(DegreeGini(g, Side::kLeft), 0.1);
}

TEST(GeneratePlantedBlocksTest, RespectsBlockStructure) {
  Rng rng(13);
  const int blocks = 4;
  const BipartiteGraph g = GeneratePlantedBlocks(400, 400, 20000, blocks, 1.0, rng);
  // With in_block_prob = 1 every edge joins same-index blocks.
  for (const Edge& e : g.EdgeList()) {
    EXPECT_EQ(e.left / 100, e.right / 100);
  }
}

TEST(GeneratePlantedBlocksTest, ZeroInBlockProbIsUniform) {
  Rng rng(17);
  const BipartiteGraph g = GeneratePlantedBlocks(200, 200, 20000, 4, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 20000u);
  EXPECT_LT(DegreeGini(g, Side::kLeft), 0.15);
}

TEST(GeneratePlantedBlocksTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW((void)GeneratePlantedBlocks(10, 10, 5, 0, 0.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)GeneratePlantedBlocks(10, 10, 5, 20, 0.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)GeneratePlantedBlocks(10, 10, 5, 2, 1.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gdp::graph
