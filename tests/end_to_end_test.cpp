// Integration tests: the full pipeline (generator -> specializer -> engine ->
// access policy -> metrics) wired together the way examples and benches use it.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/individual_dp.hpp"
#include "common/rng.hpp"
#include "core/access_policy.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "query/workload.hpp"

namespace gdp {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph DblpMini() {
  Rng rng(101);
  gdp::graph::DblpLikeParams p;
  p.num_left = 2000;
  p.num_right = 3500;
  p.num_edges = 10000;
  return GenerateDblpLike(p, rng);
}

TEST(EndToEndTest, FullPipelineWithAccessTiers) {
  const BipartiteGraph g = DblpMini();
  core::DisclosureConfig cfg;
  cfg.depth = 7;
  cfg.arity = 4;
  cfg.epsilon_g = 0.999;
  Rng rng(7);
  const core::DisclosureResult result = core::RunDisclosure(g, cfg, rng);

  const core::AccessPolicy policy = core::AccessPolicy::Uniform(6);
  double previous_sigma = std::numeric_limits<double>::infinity();
  for (int tier = 0; tier < policy.num_tiers(); ++tier) {
    const core::LevelRelease& view = policy.ViewFor(result.release, tier);
    // Higher tiers see finer levels, hence no more noise than lower tiers.
    EXPECT_LE(view.noise_stddev, previous_sigma) << "tier " << tier;
    previous_sigma = view.noise_stddev;
  }
}

TEST(EndToEndTest, StrippedReleaseKeepsOnlyNoisyData) {
  const BipartiteGraph g = DblpMini();
  core::DisclosureConfig cfg;
  cfg.depth = 5;
  Rng rng(9);
  const core::DisclosureResult result = core::RunDisclosure(g, cfg, rng);
  const core::MultiLevelRelease pub = result.release.StripTruth();
  for (const auto& lvl : pub.levels()) {
    EXPECT_EQ(lvl.true_total, 0.0);
    for (const double t : lvl.true_group_counts) {
      EXPECT_EQ(t, 0.0);
    }
  }
  // Still useful: noisy totals present.
  EXPECT_NE(pub.level(1).noisy_total, 0.0);
}

TEST(EndToEndTest, GraphSurvivesIoThenDisclosure) {
  const BipartiteGraph g = DblpMini();
  std::stringstream ss;
  gdp::graph::WriteEdgeList(g, ss);
  const BipartiteGraph loaded = gdp::graph::ReadEdgeList(ss);

  core::DisclosureConfig cfg;
  cfg.depth = 5;
  Rng r1(11);
  Rng r2(11);
  const auto a = core::RunDisclosure(g, cfg, r1);
  const auto b = core::RunDisclosure(loaded, cfg, r2);
  for (int lvl = 0; lvl <= 5; ++lvl) {
    EXPECT_DOUBLE_EQ(a.release.level(lvl).noisy_total,
                     b.release.level(lvl).noisy_total);
  }
}

TEST(EndToEndTest, WorkloadOverHierarchyLevels) {
  const BipartiteGraph g = DblpMini();
  core::DisclosureConfig cfg;
  cfg.depth = 5;
  Rng rng(13);
  const core::DisclosureResult result = core::RunDisclosure(g, cfg, rng);

  query::Workload w;
  w.Add(std::make_unique<query::AssociationCountQuery>());
  Rng qrng(15);
  double prev_rer_bound = 0.0;
  for (int lvl = 0; lvl <= 5; ++lvl) {
    const auto res = w.Run(g, result.hierarchy.level(lvl),
                           core::NoiseKind::kGaussian, 0.999, 1e-5, qrng);
    // Noise scale (not the draw) must be monotone in level.
    EXPECT_GE(res[0].noise_stddev, prev_rer_bound);
    prev_rer_bound = res[0].noise_stddev;
  }
}

TEST(EndToEndTest, GroupDpProtectsWhatEdgeDpExposes) {
  // The paper's core claim as one assertion chain: at equal epsilon, the
  // edge-DP release leaves a mid-level group distinguishable while the
  // group-DP release at that level does not.
  const BipartiteGraph g = DblpMini();
  core::DisclosureConfig cfg;
  cfg.depth = 6;
  cfg.include_group_counts = false;
  Rng rng(17);
  const auto result = core::RunDisclosure(g, cfg, rng);

  const int lvl = 4;
  const double group_weight =
      static_cast<double>(result.hierarchy.level(lvl).MaxGroupDegreeSum(g));
  Rng erng(19);
  const auto edge_release = baseline::ReleaseCountEdgeDp(
      g, core::NoiseKind::kLaplace, 0.999, 1e-5, erng);

  const double risk_edge =
      baseline::GroupDistinguishability(group_weight, edge_release.noise_stddev);
  const double risk_group = baseline::GroupDistinguishability(
      group_weight, result.release.level(lvl).noise_stddev);
  EXPECT_GT(risk_edge, 0.99);
  EXPECT_LT(risk_group, 0.5);
}

TEST(EndToEndTest, LedgerNeverExceedsConfiguredBudget) {
  const BipartiteGraph g = DblpMini();
  for (const double eps : {0.1, 0.5, 0.999}) {
    core::DisclosureConfig cfg;
    cfg.depth = 5;
    cfg.epsilon_g = eps;
    Rng rng(23);
    const auto result = core::RunDisclosure(g, cfg, rng);
    EXPECT_LE(result.ledger.epsilon_spent(), eps + 1e-9);
  }
}

}  // namespace
}  // namespace gdp
