#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace gdp::common {
namespace {

TEST(SplitMix64Test, DistinctOutputsFromSequentialStates) {
  std::uint64_t state = 0;
  const auto a = SplitMix64(state);
  const auto b = SplitMix64(state);
  const auto c = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(SplitMix64Test, DeterministicForEqualState) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

TEST(Pcg64Test, SameSeedSameStream) {
  Pcg64 a(123);
  Pcg64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Pcg64Test, DifferentSeedsDiverge) {
  Pcg64 a(1);
  Pcg64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Pcg64Test, ReseedRestartsStream) {
  Pcg64 a(7);
  const auto first = a();
  (void)a();
  a.Reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Pcg64Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Pcg64>);
  EXPECT_EQ(Pcg64::min(), 0u);
  EXPECT_EQ(Pcg64::max(), std::numeric_limits<std::uint64_t>::max());
}

TEST(RngTest, UniformUnitWithinHalfOpenInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformPositiveUnitNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformPositiveUnit();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(RngTest, UniformUnitMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.UniformUnit();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformDoubleRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(-3.5, 2.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.25);
  }
}

TEST(RngTest, UniformDoubleRejectsBadBounds) {
  Rng rng(1);
  EXPECT_THROW((void)rng.UniformDouble(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.UniformDouble(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(
      (void)rng.UniformDouble(0.0, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(RngTest, UniformIntBoundZeroThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.UniformInt(std::uint64_t{0}), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversSmallRangeUniformly) {
  Rng rng(17);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.UniformInt(kBound)];
  }
  for (const int c : counts) {
    // Expected 10000 per bucket; 5-sigma band ~ +-500.
    EXPECT_NEAR(c, kN / static_cast<int>(kBound), 500);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.UniformInt(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntInclusiveRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW((void)rng.UniformInt(std::int64_t{3}, std::int64_t{2}),
               std::invalid_argument);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(std::int64_t{7}, std::int64_t{7}), 7);
  }
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRejectsOutOfRange) {
  Rng rng(23);
  EXPECT_THROW((void)rng.Bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.Bernoulli(1.1), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  constexpr int kN = 100000;
  int ones = 0;
  for (int i = 0; i < kN; ++i) {
    ones += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkProducesDecorrelatedStreams) {
  Rng parent(77);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ForkIsDeterministicGivenParentState) {
  Rng p1(55);
  Rng p2(55);
  Rng c1 = p1.Fork(9);
  Rng c2 = p2.Fork(9);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(c1(), c2());
  }
}

TEST(RngTest, ForkStreamsMatchesSequentialForkOrder) {
  // The parallel engines rely on ForkStreams(k) being exactly Fork(0..k-1)
  // in order: that is what makes chunked output thread-count-invariant.
  Rng p1(91);
  Rng p2(91);
  std::vector<Rng> streams = p1.ForkStreams(5);
  ASSERT_EQ(streams.size(), 5u);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    Rng expected = p2.Fork(static_cast<std::uint64_t>(s));
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(streams[s](), expected()) << "stream " << s;
    }
  }
  // Both parents advanced identically.
  EXPECT_EQ(p1(), p2());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // 1/100! chance of false failure
}

TEST(RngTest, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(1);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SeedAccessorReportsConstructionSeed) {
  Rng rng(12345);
  EXPECT_EQ(rng.seed(), 12345u);
}

// Chi-square uniformity check over 256 buckets of the high byte.
TEST(RngTest, HighByteChiSquareReasonable) {
  Rng rng(101);
  constexpr int kN = 256000;
  std::vector<int> counts(256, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng() >> 56];
  }
  double chi2 = 0.0;
  const double expected = kN / 256.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, stddev ~22.6; accept a generous 5-sigma band.
  EXPECT_GT(chi2, 255.0 - 5 * 22.6);
  EXPECT_LT(chi2, 255.0 + 5 * 22.6);
}

}  // namespace
}  // namespace gdp::common
