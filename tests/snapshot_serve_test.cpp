// Snapshot-backed serving: catalog lazy materialization, SessionRegistry
// plan adoption under the fingerprint discipline, and the end-to-end
// contract — a DisclosureService serving from a packed snapshot produces
// bit-identical results to one serving the same dataset built eagerly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "storage/snapshot.hpp"

namespace gdp::serve {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::storage::Snapshot;
using gdp::storage::SnapshotContents;

BipartiteGraph TestGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 500;
  p.num_edges = 2500;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  return spec;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Pack `graph` (compiled under `spec` + `seed` when `with_plan`) to `path`.
void PackTo(const std::string& path, const BipartiteGraph& graph,
            const gdp::core::SessionSpec& spec, std::uint64_t seed,
            bool with_plan) {
  SnapshotContents contents;
  contents.graph = &graph;
  std::shared_ptr<const gdp::core::CompiledDisclosure> compiled;
  if (with_plan) {
    Rng rng(seed);
    compiled = gdp::core::CompiledDisclosure::Compile(graph, spec, rng);
    contents.hierarchy = &compiled->hierarchy();
    contents.plan = &compiled->plan();
    contents.phase1_epsilon_spent = compiled->phase1_epsilon_spent();
    contents.fingerprint = SessionRegistry::Fingerprint(spec, seed);
  }
  WriteSnapshotFile(path, contents);
}

TEST(SnapshotCatalogTest, LazyEntryMaterializesOnFirstGet) {
  const std::string path = TempPath("gdp_snap_catalog.gdps");
  const auto graph = TestGraph();
  PackTo(path, graph, SmallSpec(), 7, /*with_plan=*/false);

  DatasetCatalog catalog;
  catalog.RegisterSnapshot("packed", path, SmallSpec(), 7);
  EXPECT_TRUE(catalog.Contains("packed"));
  EXPECT_EQ(catalog.size(), 1u);
  // Registration read NOTHING: deleting the file before the first Get and
  // restoring it after proves the load really is deferred.
  EXPECT_FALSE(catalog.Materialized("packed"));

  const Dataset& ds = catalog.Get("packed");
  EXPECT_TRUE(catalog.Materialized("packed"));
  ASSERT_NE(ds.snapshot, nullptr);
  EXPECT_EQ(ds.graph.num_edges(), graph.num_edges());
  EXPECT_EQ(ds.compile_seed, 7u);
  // Second Get returns the same materialized entry.
  EXPECT_EQ(&catalog.Get("packed"), &ds);
  std::remove(path.c_str());
}

TEST(SnapshotCatalogTest, MissingFileFailsOnGetAndStaysRetryable) {
  const std::string path = TempPath("gdp_snap_catalog_missing.gdps");
  std::remove(path.c_str());
  DatasetCatalog catalog;
  catalog.RegisterSnapshot("packed", path, SmallSpec(), 7);
  EXPECT_THROW((void)catalog.Get("packed"), gdp::common::IoError);
  EXPECT_FALSE(catalog.Materialized("packed"));
  // The entry survives the failure: once the file exists, Get succeeds.
  PackTo(path, TestGraph(), SmallSpec(), 7, /*with_plan=*/false);
  EXPECT_NO_THROW((void)catalog.Get("packed"));
  EXPECT_TRUE(catalog.Materialized("packed"));
  std::remove(path.c_str());
}

TEST(SnapshotRegistryTest, AdoptsEmbeddedPlanOnlyWhenFingerprintMatches) {
  const std::string path = TempPath("gdp_snap_registry.gdps");
  const auto graph = TestGraph();
  const auto spec = SmallSpec();
  PackTo(path, graph, spec, 7, /*with_plan=*/true);
  const auto snap = Snapshot::Load(path);

  // Matching (spec, seed): the miss adopts instead of compiling.
  SessionRegistry adopting(4);
  const auto adopted =
      adopting.GetOrCompile("ds", snap->graph(), spec, 7, snap.get());
  EXPECT_EQ(adopting.stats().misses, 1u);
  EXPECT_EQ(adopting.stats().snapshot_adoptions, 1u);

  // The adopted artifact is bit-identical to a fresh compile.
  SessionRegistry compiling(4);
  const auto fresh = compiling.GetOrCompile("ds", graph, spec, 7);
  EXPECT_EQ(compiling.stats().snapshot_adoptions, 0u);
  Rng rng_a(99);
  Rng rng_b(99);
  const auto ra = adopted->Release(spec.budget, rng_a);
  const auto rb = fresh->Release(spec.budget, rng_b);
  ASSERT_EQ(ra.num_levels(), rb.num_levels());
  for (int i = 0; i < ra.num_levels(); ++i) {
    EXPECT_EQ(ra.level(i).noisy_total, rb.level(i).noisy_total);
    EXPECT_EQ(ra.level(i).noisy_group_counts, rb.level(i).noisy_group_counts);
  }

  // A different compile seed changes the fingerprint: silent fallback to a
  // fresh compile, never a wrong adoption.
  SessionRegistry mismatched(4);
  (void)mismatched.GetOrCompile("ds", snap->graph(), spec, 8, snap.get());
  EXPECT_EQ(mismatched.stats().misses, 1u);
  EXPECT_EQ(mismatched.stats().snapshot_adoptions, 0u);

  // A hit never consults the snapshot.
  (void)adopting.GetOrCompile("ds", snap->graph(), spec, 7, snap.get());
  EXPECT_EQ(adopting.stats().hits, 1u);
  EXPECT_EQ(adopting.stats().snapshot_adoptions, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotServeTest, SnapshotBackedServiceBitIdenticalToEagerService) {
  const std::string path = TempPath("gdp_snap_serve.gdps");
  const auto graph = TestGraph();
  const auto spec = SmallSpec();
  PackTo(path, graph, spec, 7, /*with_plan=*/true);

  DisclosureService eager(4);
  eager.catalog().Register("ds", Dataset{TestGraph(), spec, 7, {}, {}});
  DisclosureService packed(4);
  packed.catalog().RegisterSnapshot("ds", path, spec, 7);

  TenantProfile profile;
  profile.epsilon_cap = 50.0;
  profile.delta_cap = 0.01;
  profile.privilege = 2;
  for (auto* svc : {&eager, &packed}) {
    svc->broker().Register("alice", profile);
    svc->broker().Register("bob", profile);
  }

  // Identical request streams from identical Rng states must serve
  // identical noisy views whichever storage path the dataset took.
  Rng rng_eager = Rng(7).Fork(1);
  Rng rng_packed = Rng(7).Fork(1);
  for (const auto& [tenant, eps] : std::vector<std::pair<std::string, double>>{
           {"alice", 0.5}, {"bob", 0.4}, {"alice", 0.3}}) {
    gdp::core::BudgetSpec budget = spec.budget;
    budget.epsilon_g = eps;
    const ServeResult a = eager.Serve(tenant, "ds", budget, rng_eager);
    const ServeResult b = packed.Serve(tenant, "ds", budget, rng_packed);
    ASSERT_TRUE(a.granted);
    ASSERT_TRUE(b.granted);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.view.noisy_total, b.view.noisy_total);
    EXPECT_EQ(a.view.noisy_group_counts, b.view.noisy_group_counts);
    EXPECT_EQ(a.epsilon_spent, b.epsilon_spent);
  }
  // The packed service's only miss was served by adoption: zero Phase-1
  // EM builds ran in that process.
  EXPECT_EQ(packed.registry().stats().snapshot_adoptions, 1u);
  EXPECT_EQ(eager.registry().stats().snapshot_adoptions, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdp::serve
