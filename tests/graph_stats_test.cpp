#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::graph {
namespace {

BipartiteGraph SmallGraph() {
  return BipartiteGraph(3, 4,
                        {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {1, 3}, {2, 3}});
}

TEST(DegreeHistogramTest, CountsNodesPerDegree) {
  const BipartiteGraph g = SmallGraph();
  const auto hist = DegreeHistogram(g, Side::kLeft);
  // Degrees on the left: 2, 3, 1.
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(DegreeHistogramTest, HistogramSumsToNodeCount) {
  gdp::common::Rng rng(3);
  const BipartiteGraph g = GenerateUniformRandom(100, 150, 700, rng);
  const auto hist = DegreeHistogram(g, Side::kRight);
  EdgeCount total = std::accumulate(hist.begin(), hist.end(), EdgeCount{0});
  EXPECT_EQ(total, 150u);
}

TEST(DegreeGiniTest, UniformDegreesGiveZero) {
  // Perfect matching: every node degree 1.
  const BipartiteGraph g(4, 4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_NEAR(DegreeGini(g, Side::kLeft), 0.0, 1e-12);
}

TEST(DegreeGiniTest, ConcentratedDegreesNearOne) {
  // One left node holds every edge among 100 nodes.
  std::vector<Edge> edges;
  for (NodeIndex r = 0; r < 50; ++r) {
    edges.push_back({0, r});
  }
  const BipartiteGraph g(100, 50, std::move(edges));
  EXPECT_GT(DegreeGini(g, Side::kLeft), 0.95);
}

TEST(DegreeGiniTest, EdgelessGraphIsZero) {
  const BipartiteGraph g(10, 10, {});
  EXPECT_EQ(DegreeGini(g, Side::kLeft), 0.0);
}

TEST(IncidentEdgeCountTest, SumsMemberDegrees) {
  const BipartiteGraph g = SmallGraph();
  const std::vector<NodeIndex> nodes{0, 1};
  EXPECT_EQ(IncidentEdgeCount(g, Side::kLeft, nodes), 5u);  // 2 + 3
}

TEST(IncidentEdgeCountTest, WholeSideEqualsEdgeCount) {
  const BipartiteGraph g = SmallGraph();
  std::vector<NodeIndex> all(g.num_right());
  std::iota(all.begin(), all.end(), NodeIndex{0});
  EXPECT_EQ(IncidentEdgeCount(g, Side::kRight, all), g.num_edges());
}

TEST(IncidentEdgeCountTest, EmptySetIsZero) {
  const BipartiteGraph g = SmallGraph();
  EXPECT_EQ(IncidentEdgeCount(g, Side::kLeft, {}), 0u);
}

TEST(InducedEdgeCountTest, CountsOnlyInternalEdges) {
  const BipartiteGraph g = SmallGraph();
  // Left {0,1} x Right {1}: edges (0,1) and (1,1).
  const std::vector<NodeIndex> left{0, 1};
  const std::vector<NodeIndex> right{1};
  EXPECT_EQ(InducedEdgeCount(g, left, right), 2u);
}

TEST(InducedEdgeCountTest, FullSetsGiveAllEdges) {
  const BipartiteGraph g = SmallGraph();
  std::vector<NodeIndex> left(g.num_left());
  std::vector<NodeIndex> right(g.num_right());
  std::iota(left.begin(), left.end(), NodeIndex{0});
  std::iota(right.begin(), right.end(), NodeIndex{0});
  EXPECT_EQ(InducedEdgeCount(g, left, right), g.num_edges());
}

TEST(InducedEdgeCountTest, DisjointPartsPartitionEdges) {
  gdp::common::Rng rng(7);
  const BipartiteGraph g = GenerateUniformRandom(60, 60, 600, rng);
  // Split both sides in half; the four quadrant counts must total |E|.
  std::vector<NodeIndex> l0;
  std::vector<NodeIndex> l1;
  std::vector<NodeIndex> r0;
  std::vector<NodeIndex> r1;
  for (NodeIndex v = 0; v < 60; ++v) {
    (v < 30 ? l0 : l1).push_back(v);
    (v < 30 ? r0 : r1).push_back(v);
  }
  const EdgeCount total = InducedEdgeCount(g, l0, r0) + InducedEdgeCount(g, l0, r1) +
                          InducedEdgeCount(g, l1, r0) + InducedEdgeCount(g, l1, r1);
  EXPECT_EQ(total, g.num_edges());
}

TEST(IncidentEdgeCountsByLabelTest, GroupsDegreesByLabel) {
  const BipartiteGraph g = SmallGraph();
  // Left labels: node0 -> 0, node1 -> 1, node2 -> 0.
  const std::vector<std::uint32_t> labels{0, 1, 0};
  const auto counts = IncidentEdgeCountsByLabel(g, Side::kLeft, labels, 2);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);  // deg(0)+deg(2) = 2+1
  EXPECT_EQ(counts[1], 3u);  // deg(1)
}

TEST(IncidentEdgeCountsByLabelTest, ValidatesInputs) {
  const BipartiteGraph g = SmallGraph();
  const std::vector<std::uint32_t> short_labels{0, 1};
  EXPECT_THROW((void)IncidentEdgeCountsByLabel(g, Side::kLeft, short_labels, 2),
               std::invalid_argument);
  const std::vector<std::uint32_t> bad_labels{0, 5, 0};
  EXPECT_THROW((void)IncidentEdgeCountsByLabel(g, Side::kLeft, bad_labels, 2),
               std::out_of_range);
}

}  // namespace
}  // namespace gdp::graph
