#include "core/access_policy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gdp::core {
namespace {

MultiLevelRelease ThreeLevelRelease() {
  std::vector<LevelRelease> levels;
  for (int i = 0; i < 3; ++i) {
    LevelRelease lr;
    lr.level = i;
    lr.true_total = 100.0;
    lr.noisy_total = 100.0 + i;
    levels.push_back(lr);
  }
  return MultiLevelRelease(std::move(levels));
}

TEST(AccessPolicyTest, UniformMapsLowestTierToCoarsestLevel) {
  const AccessPolicy policy = AccessPolicy::Uniform(8);
  EXPECT_EQ(policy.num_tiers(), 8);
  EXPECT_EQ(policy.LevelForPrivilege(0), 7);  // lowest privilege
  EXPECT_EQ(policy.LevelForPrivilege(7), 0);  // highest privilege
  EXPECT_EQ(policy.LevelForPrivilege(3), 4);
}

TEST(AccessPolicyTest, UniformRejectsBadTierCount) {
  EXPECT_THROW((void)AccessPolicy::Uniform(0), std::invalid_argument);
}

TEST(AccessPolicyTest, ExplicitMappingValidated) {
  EXPECT_NO_THROW(AccessPolicy({5, 3, 3, 0}));
  EXPECT_THROW(AccessPolicy({}), std::invalid_argument);
  EXPECT_THROW(AccessPolicy({1, 2}), std::invalid_argument);  // increasing
  EXPECT_THROW(AccessPolicy({3, -1}), std::invalid_argument);
}

TEST(AccessPolicyTest, LevelForPrivilegeBounds) {
  const AccessPolicy policy = AccessPolicy::Uniform(3);
  EXPECT_THROW((void)policy.LevelForPrivilege(-1), std::out_of_range);
  EXPECT_THROW((void)policy.LevelForPrivilege(3), std::out_of_range);
}

TEST(AccessPolicyTest, ViewForReturnsMappedLevel) {
  const MultiLevelRelease r = ThreeLevelRelease();
  const AccessPolicy policy = AccessPolicy::Uniform(3);
  EXPECT_DOUBLE_EQ(policy.ViewFor(r, 0).noisy_total, 102.0);  // level 2
  EXPECT_DOUBLE_EQ(policy.ViewFor(r, 2).noisy_total, 100.0);  // level 0
}

TEST(AccessPolicyTest, ViewForThrowsWhenLevelMissing) {
  const MultiLevelRelease r = ThreeLevelRelease();
  const AccessPolicy policy({5});  // references level 5, release has 0..2
  EXPECT_THROW((void)policy.ViewFor(r, 0), std::out_of_range);
}

TEST(AccessPolicyTest, TypedErrorOnBothFailurePaths) {
  // Path 1: the privilege tier is outside the policy.
  const AccessPolicy uniform = AccessPolicy::Uniform(3);
  const MultiLevelRelease r = ThreeLevelRelease();
  EXPECT_THROW((void)uniform.LevelForPrivilege(7),
               gdp::common::AccessPolicyError);
  EXPECT_THROW((void)uniform.ViewFor(r, -1), gdp::common::AccessPolicyError);
  // Path 2: the tier is fine but the policy maps it to a level the release
  // does not contain.
  const AccessPolicy missing({5});
  EXPECT_THROW((void)missing.ViewFor(r, 0), gdp::common::AccessPolicyError);
  // The typed error stays catchable as the pre-typed std::out_of_range.
  const gdp::common::AccessPolicyError err("x");
  const std::out_of_range* base = &err;
  EXPECT_NE(base, nullptr);
}

TEST(AccessPolicyTest, HigherPrivilegeNeverCoarser) {
  const AccessPolicy policy = AccessPolicy::Uniform(6);
  for (int p = 1; p < policy.num_tiers(); ++p) {
    EXPECT_LE(policy.LevelForPrivilege(p), policy.LevelForPrivilege(p - 1));
  }
}

}  // namespace
}  // namespace gdp::core
