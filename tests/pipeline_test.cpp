#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/consistency.hpp"
#include "graph/generators.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 500;
  p.num_right = 700;
  p.num_edges = 3000;
  return GenerateDblpLike(p, rng);
}

DisclosureConfig SmallConfig() {
  DisclosureConfig cfg;
  cfg.depth = 5;
  cfg.arity = 4;
  return cfg;
}

TEST(PipelineTest, ProducesHierarchyReleaseAndLedger) {
  const BipartiteGraph g = TestGraph();
  Rng rng(7);
  const DisclosureResult result = RunDisclosure(g, SmallConfig(), rng);
  EXPECT_EQ(result.hierarchy.depth(), 5);
  EXPECT_EQ(result.release.num_levels(), 6);
  EXPECT_EQ(result.ledger.charges().size(), 2u);
}

TEST(PipelineTest, BudgetSplitRespectsPhase1Fraction) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.epsilon_g = 1.0;
  cfg.phase1_fraction = 0.25;
  Rng rng(7);
  const DisclosureResult result = RunDisclosure(g, cfg, rng);
  EXPECT_NEAR(result.ledger.charges()[0].epsilon, 0.25, 1e-9);
  EXPECT_NEAR(result.ledger.charges()[1].epsilon, 0.75, 1e-9);
  EXPECT_LE(result.ledger.epsilon_spent(), 1.0 + 1e-9);
}

TEST(PipelineTest, RejectsBadPhase1Fraction) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  cfg.phase1_fraction = 0.0;
  EXPECT_THROW((void)RunDisclosure(g, cfg, rng), std::invalid_argument);
  cfg.phase1_fraction = 1.0;
  EXPECT_THROW((void)RunDisclosure(g, cfg, rng), std::invalid_argument);
}

TEST(PipelineTest, RejectsBadEpsilon) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.epsilon_g = -1.0;
  Rng rng(7);
  EXPECT_THROW((void)RunDisclosure(g, cfg, rng), std::invalid_argument);
}

TEST(PipelineTest, DeterministicUnderSeed) {
  const BipartiteGraph g = TestGraph();
  Rng r1(11);
  Rng r2(11);
  const DisclosureResult a = RunDisclosure(g, SmallConfig(), r1);
  const DisclosureResult b = RunDisclosure(g, SmallConfig(), r2);
  for (int lvl = 0; lvl < a.release.num_levels(); ++lvl) {
    EXPECT_DOUBLE_EQ(a.release.level(lvl).noisy_total,
                     b.release.level(lvl).noisy_total);
  }
}

TEST(PipelineTest, DifferentSeedsGiveDifferentNoise) {
  const BipartiteGraph g = TestGraph();
  Rng r1(11);
  Rng r2(12);
  const DisclosureResult a = RunDisclosure(g, SmallConfig(), r1);
  const DisclosureResult b = RunDisclosure(g, SmallConfig(), r2);
  EXPECT_NE(a.release.level(3).noisy_total, b.release.level(3).noisy_total);
}

TEST(PipelineTest, ParallelDisclosureInvariantAcrossThreadCounts) {
  // End-to-end determinism of the parallel path: graph is big enough (1200
  // nodes) that with grain 256 the level-0 vector noise really chunks, and
  // the plan scan really shards on a per-pool basis inside RunDisclosure.
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.noise_chunk_grain = 256;
  std::vector<MultiLevelRelease> releases;
  const int thread_counts[] = {2, 4, 8};
  for (const int threads : thread_counts) {
    cfg.num_threads = threads;
    Rng rng(7);
    releases.push_back(RunDisclosure(g, cfg, rng).release);
  }
  for (int t = 1; t < 3; ++t) {
    ASSERT_EQ(releases[t].num_levels(), releases[0].num_levels());
    for (int lvl = 0; lvl < releases[0].num_levels(); ++lvl) {
      EXPECT_EQ(releases[t].level(lvl).noisy_total,
                releases[0].level(lvl).noisy_total)
          << "threads " << thread_counts[t] << " level " << lvl;
      EXPECT_EQ(releases[t].level(lvl).noisy_group_counts,
                releases[0].level(lvl).noisy_group_counts)
          << "threads " << thread_counts[t] << " level " << lvl;
    }
  }
}

TEST(PipelineTest, RerOrderingMatchesPaperOnAverage) {
  // Coarser protection levels must show larger average RER (Figure 1's
  // vertical ordering).  Averaged over several pipeline runs.
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.include_group_counts = false;
  double rer_fine = 0.0;
  double rer_coarse = 0.0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(100 + static_cast<std::uint64_t>(t));
    const DisclosureResult result = RunDisclosure(g, cfg, rng);
    rer_fine += result.release.level(1).TotalRer();
    rer_coarse += result.release.level(4).TotalRer();
  }
  EXPECT_LT(rer_fine, rer_coarse);
}

TEST(PipelineTest, LevelZeroUsesMaxDegreeSensitivity) {
  const BipartiteGraph g = TestGraph();
  Rng rng(13);
  const DisclosureResult result = RunDisclosure(g, SmallConfig(), rng);
  const double max_degree = static_cast<double>(
      std::max(g.MaxDegree(gdp::graph::Side::kLeft),
               g.MaxDegree(gdp::graph::Side::kRight)));
  EXPECT_DOUBLE_EQ(result.release.level(0).sensitivity, max_degree);
}

TEST(PipelineTest, EnforceConsistencyProducesConsistentRelease) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.enforce_consistency = true;
  Rng rng(21);
  const DisclosureResult result = RunDisclosure(g, cfg, rng);
  EXPECT_TRUE(gdp::core::IsHierarchicallyConsistent(result.hierarchy,
                                                    result.release, 1e-6));
}

TEST(PipelineTest, EnforceConsistencyRequiresGroupCounts) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.enforce_consistency = true;
  cfg.include_group_counts = false;
  Rng rng(23);
  EXPECT_THROW((void)RunDisclosure(g, cfg, rng), std::invalid_argument);
}

TEST(PipelineTest, TopLevelUsesEdgeCountSensitivity) {
  const BipartiteGraph g = TestGraph();
  Rng rng(13);
  const DisclosureResult result = RunDisclosure(g, SmallConfig(), rng);
  EXPECT_DOUBLE_EQ(result.release.level(5).sensitivity,
                   static_cast<double>(g.num_edges()));
}

}  // namespace
}  // namespace gdp::core
