#include "baseline/individual_dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::baseline {
namespace {

using gdp::common::Rng;
using gdp::core::NoiseKind;

BipartiteGraph TestGraph() {
  Rng rng(3);
  return gdp::graph::GenerateUniformRandom(100, 100, 2000, rng);
}

TEST(EdgeDpTest, UnitSensitivity) {
  const BipartiteGraph g = TestGraph();
  Rng rng(5);
  const CountRelease r =
      ReleaseCountEdgeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, rng);
  EXPECT_DOUBLE_EQ(r.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(r.true_total, 2000.0);
  EXPECT_NEAR(r.noise_stddev, std::sqrt(2.0), 1e-12);
}

TEST(EdgeDpTest, TinyRelativeErrorOnLargeGraph) {
  const BipartiteGraph g = TestGraph();
  double rer_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    rer_sum += ReleaseCountEdgeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, rng).Rer();
  }
  EXPECT_LT(rer_sum / 20.0, 0.01);  // individual DP barely moves the count
}

TEST(NodeDpTest, SensitivityIsMaxDegree) {
  const BipartiteGraph g = TestGraph();
  Rng rng(7);
  const CountRelease r =
      ReleaseCountNodeDp(g, NoiseKind::kGaussian, 0.9, 1e-5, rng);
  const double max_degree = static_cast<double>(
      std::max(g.MaxDegree(gdp::graph::Side::kLeft),
               g.MaxDegree(gdp::graph::Side::kRight)));
  EXPECT_DOUBLE_EQ(r.sensitivity, max_degree);
  EXPECT_GT(r.noise_stddev, 0.0);
}

TEST(NodeDpTest, ThrowsOnEdgelessGraph) {
  const BipartiteGraph g(5, 5, {});
  Rng rng(1);
  EXPECT_THROW((void)ReleaseCountNodeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, rng),
               std::invalid_argument);
}

TEST(NodeDpTest, NoisierThanEdgeDp) {
  const BipartiteGraph g = TestGraph();
  Rng r1(11);
  Rng r2(11);
  const CountRelease edge =
      ReleaseCountEdgeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, r1);
  const CountRelease node =
      ReleaseCountNodeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, r2);
  EXPECT_GT(node.noise_stddev, edge.noise_stddev);
}

TEST(GroupDistinguishabilityTest, ZeroWeightIsHidden) {
  EXPECT_DOUBLE_EQ(GroupDistinguishability(0.0, 5.0), 0.0);
}

TEST(GroupDistinguishabilityTest, NoNoiseFullyDiscloses) {
  EXPECT_DOUBLE_EQ(GroupDistinguishability(10.0, 0.0), 1.0);
}

TEST(GroupDistinguishabilityTest, MonotoneInWeightAndNoise) {
  EXPECT_GT(GroupDistinguishability(20.0, 5.0),
            GroupDistinguishability(10.0, 5.0));
  EXPECT_GT(GroupDistinguishability(10.0, 2.0),
            GroupDistinguishability(10.0, 5.0));
}

TEST(GroupDistinguishabilityTest, MatchesClosedForm) {
  // TV(N(0,1), N(2,1)) = 2*Phi(1) - 1 ~ 0.6827.
  EXPECT_NEAR(GroupDistinguishability(2.0, 1.0), 0.6826894921370859, 1e-9);
}

TEST(GroupDistinguishabilityTest, RejectsNegativeWeight) {
  EXPECT_THROW((void)GroupDistinguishability(-1.0, 1.0), std::invalid_argument);
}

TEST(BaselineGapTest, EdgeDpLeavesGroupAggregatesExposed) {
  // The paper's motivation, quantified: with edge-DP noise (sigma ~ 1.4) a
  // group contributing hundreds of edges is essentially fully disclosed,
  // while the group-DP release at matched epsilon hides it.
  const BipartiteGraph g = TestGraph();
  Rng rng(13);
  const CountRelease edge =
      ReleaseCountEdgeDp(g, NoiseKind::kLaplace, 1.0, 1e-5, rng);
  const double group_weight = 500.0;
  EXPECT_GT(GroupDistinguishability(group_weight, edge.noise_stddev), 0.999);
  // Group-DP calibrates noise to the group weight itself.
  const auto group_mech = gdp::core::MakeMechanism(
      gdp::core::NoiseKind::kGaussian, 1.0, 1e-5, group_weight);
  EXPECT_LT(GroupDistinguishability(group_weight, group_mech->NoiseStddev()),
            0.2);
}

}  // namespace
}  // namespace gdp::baseline
