// End-to-end durability: a scripted multi-tenant run against a real WAL
// file, then a crash injected at EVERY record boundary and mid-record.  The
// recovered service must claim at least (here: exactly) the spend committed
// inside the surviving prefix — budget is never lost by a crash — a retired
// dataset stays retired across restart, a transient storage fault is
// invisible in the released values, and a permanent one fails closed while
// read-only audit keeps working.  The concurrent case runs under TSan in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "serve/audit_wal.hpp"
#include "serve/service.hpp"

namespace gdp::serve {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 500;
  p.num_edges = 2500;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  return spec;
}

Dataset SmallDataset() { return Dataset{TestGraph(), SmallSpec(), 7, {}}; }

void Configure(DisclosureService& service) {
  service.catalog().Register("dblp", SmallDataset());
  service.broker().Register("low", TenantProfile{50.0, 0.4, 0});
  service.broker().Register("high", TenantProfile{50.0, 0.4, 5});
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// The scripted run every crash test replays a prefix of: three serves for
// "low", two for "high", all durably logged to `wal_path`.
void ScriptedRun(const std::string& wal_path,
                 std::vector<double>* noisy_totals = nullptr) {
  auto service = DisclosureService::Open(Configure, wal_path);
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  for (int i = 0; i < 3; ++i) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    const ServeResult r = service->Serve("low", "dblp", budget, rng);
    ASSERT_TRUE(r.granted);
    if (noisy_totals != nullptr) {
      noisy_totals->push_back(r.view.noisy_total);
    }
  }
  for (int i = 0; i < 2; ++i) {
    Rng rng(200 + static_cast<std::uint64_t>(i));
    const ServeResult r = service->Serve("high", "dblp", budget, rng);
    ASSERT_TRUE(r.granted);
    if (noisy_totals != nullptr) {
      noisy_totals->push_back(r.view.noisy_total);
    }
  }
}

// Naive-sequential ε a tenant's ledger must report after replaying
// records[0..count): open events (nonzero ⇒ a fresh attach's phase-1 spend)
// plus every charge.
double ExpectedTenantEpsilon(const std::vector<WalRecord>& records,
                             std::size_t count, const std::string& tenant) {
  double eps = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (records[i].tenant == tenant) {
      eps += records[i].event.TotalEpsilon();
    }
  }
  return eps;
}

bool TenantOpened(const std::vector<WalRecord>& records, std::size_t count,
                  const std::string& tenant) {
  for (std::size_t i = 0; i < count; ++i) {
    if (records[i].kind == WalRecordKind::kTenantOpen &&
        records[i].tenant == tenant) {
      return true;
    }
  }
  return false;
}

TEST(CrashRecoveryTest, EveryCrashPointRecoversAllCommittedSpend) {
  const std::string dir = ::testing::TempDir();
  const std::string wal_path = dir + "/crash_matrix.wal";
  std::remove(wal_path.c_str());
  ScriptedRun(wal_path);

  std::string bytes;
  {
    FileStorage reader(wal_path);
    bytes = reader.ReadAll();
  }
  const WalReplayResult full = AuditWal::Replay(bytes);
  // 2 tenant opens + 5 charges.
  ASSERT_EQ(full.records.size(), 7u);
  ASSERT_FALSE(full.torn_tail());
  ASSERT_FALSE(full.sequence_gap);

  // Crash points: before any record (magic only, and a torn magic), at every
  // record boundary, and mid-frame after every boundary.
  struct CrashPoint {
    std::uint64_t cut;          // file length the crash leaves behind
    std::size_t whole_records;  // records wholly inside the prefix
  };
  std::vector<CrashPoint> points = {{4, 0}, {8, 0}};
  std::uint64_t prev_end = 8;
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const std::uint64_t end = full.record_end_offsets[i];
    // Mid-record: half of record i's frame survives past the previous
    // boundary — replay must truncate it back to that boundary.
    points.push_back({prev_end + (end - prev_end) / 2, i});
    points.push_back({end, i + 1});
    prev_end = end;
  }

  const std::string prefix_path = dir + "/crash_prefix.wal";
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  for (const CrashPoint& point : points) {
    SCOPED_TRACE("cut=" + std::to_string(point.cut) +
                 " whole_records=" + std::to_string(point.whole_records));
    WriteFile(prefix_path, std::string_view(bytes).substr(0, point.cut));
    auto service = DisclosureService::Open(Configure, prefix_path);

    EXPECT_EQ(service->recovery().records_replayed, point.whole_records);
    if (point.whole_records > 0) {
      const bool torn =
          point.cut != full.record_end_offsets[point.whole_records - 1];
      EXPECT_EQ(service->recovery().truncated_bytes > 0, torn);
    }
    EXPECT_FALSE(service->recovery().sequence_gap);

    // Per-tenant: the rebuilt ledger reports EXACTLY the committed spend —
    // never less (lost budget) and never phantom extra.
    for (const std::string tenant : {"low", "high"}) {
      if (TenantOpened(full.records, point.whole_records, tenant)) {
        const auto ledger = service->Ledger(tenant, "dblp");
        EXPECT_NEAR(
            ledger.epsilon_spent(),
            ExpectedTenantEpsilon(full.records, point.whole_records, tenant),
            1e-12)
            << tenant;
      } else {
        EXPECT_THROW((void)service->Ledger(tenant, "dblp"),
                     gdp::common::NotFoundError)
            << tenant;
      }
    }

    // Cross-tenant odometer: phase-1 once per artifact fingerprint (both
    // opens share the artifact) plus every committed charge.
    double expected_dataset = 0.0;
    bool phase1_counted = false;
    for (std::size_t i = 0; i < point.whole_records; ++i) {
      const WalRecord& record = full.records[i];
      if (record.kind == WalRecordKind::kTenantOpen) {
        if (!phase1_counted && record.event.TotalEpsilon() > 0.0) {
          expected_dataset += record.event.TotalEpsilon();
          phase1_counted = true;
        }
      } else if (record.kind == WalRecordKind::kCharge) {
        expected_dataset += record.event.TotalEpsilon();
      }
    }
    const auto snap = service->odometer().Get("dblp");
    if (point.whole_records > 0) {
      ASSERT_TRUE(snap.has_value());
      EXPECT_NEAR(snap->epsilon_spent, expected_dataset, 1e-12);
    }

    // The recovered service still serves, and the new spend lands on top of
    // the recovered history.
    Rng rng(999);
    const ServeResult again = service->Serve("low", "dblp", budget, rng);
    EXPECT_TRUE(again.granted);
    EXPECT_GT(service->Ledger("low", "dblp").epsilon_spent(),
              ExpectedTenantEpsilon(full.records, point.whole_records, "low"));
  }
  std::remove(wal_path.c_str());
  std::remove(prefix_path.c_str());
}

TEST(CrashRecoveryTest, WalAddsNoRandomnessAndTransientFaultsAreInvisible) {
  // The same scripted run three ways — no WAL, a clean WAL, and a WAL whose
  // storage throws transient errors mid-run — must release bit-identical
  // values: durability is bookkeeping, never noise.
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  auto run_plain = [&budget]() {
    DisclosureService service(4);
    Configure(service);
    std::vector<double> totals;
    for (int i = 0; i < 3; ++i) {
      Rng rng(100 + static_cast<std::uint64_t>(i));
      const ServeResult r = service.Serve("low", "dblp", budget, rng);
      EXPECT_TRUE(r.granted);
      totals.push_back(r.view.noisy_total);
    }
    for (int i = 0; i < 2; ++i) {
      Rng rng(200 + static_cast<std::uint64_t>(i));
      const ServeResult r = service.Serve("high", "dblp", budget, rng);
      EXPECT_TRUE(r.granted);
      totals.push_back(r.view.noisy_total);
    }
    return totals;
  };
  const std::vector<double> plain = run_plain();

  const std::string wal_path = ::testing::TempDir() + "/no_randomness.wal";
  std::remove(wal_path.c_str());
  std::vector<double> durable;
  ScriptedRun(wal_path, &durable);
  ASSERT_EQ(durable.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(durable[i], plain[i]) << "request " << i;
  }
  std::remove(wal_path.c_str());

  // Survivor path: ops 0/1 are the magic write, 2/3 the first open record;
  // fail the first charge's append (op 4) once — it is retried and the run
  // proceeds, releasing the SAME values.
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(),
      FaultyStorage::FaultMode::kTransientError, /*fail_at_op=*/4);
  auto service = DisclosureService::Open(Configure, std::move(faulty));
  std::vector<double> survived;
  for (int i = 0; i < 3; ++i) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    const ServeResult r = service->Serve("low", "dblp", budget, rng);
    ASSERT_TRUE(r.granted);
    survived.push_back(r.view.noisy_total);
  }
  for (int i = 0; i < 2; ++i) {
    Rng rng(200 + static_cast<std::uint64_t>(i));
    const ServeResult r = service->Serve("high", "dblp", budget, rng);
    ASSERT_TRUE(r.granted);
    survived.push_back(r.view.noisy_total);
  }
  ASSERT_EQ(survived.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(survived[i], plain[i]) << "request " << i;
  }
  EXPECT_FALSE(service->failed_closed());
}

TEST(CrashRecoveryTest, PermanentWalFailureFailsClosedButAuditStillReads) {
  // Ops 0/1 magic, 2/3 the open record; every op from the first charge's
  // append on fails permanently.
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(),
      FaultyStorage::FaultMode::kPermanentError, /*fail_at_op=*/4,
      /*fail_ops=*/1000000);
  auto service = DisclosureService::Open(Configure, std::move(faulty));
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  Rng rng(5);
  EXPECT_THROW((void)service->Serve("low", "dblp", budget, rng),
               gdp::common::DurabilityError);
  EXPECT_TRUE(service->failed_closed());
  // The latch holds: every further request is rejected up front.
  EXPECT_THROW((void)service->Serve("low", "dblp", budget, rng),
               gdp::common::DurabilityError);
  EXPECT_THROW((void)service->Serve("high", "dblp", budget, rng),
               gdp::common::DurabilityError);
  // Read-only audit still works: the attach (phase-1) went through before
  // the failing charge, and the denied releases never hit the ledger.
  const auto ledger = service->Ledger("low", "dblp");
  EXPECT_EQ(ledger.charges().size(), 1u);
  const DurabilityStats stats = service->durability_stats();
  EXPECT_GE(stats.wal_failures, 1u);
  EXPECT_GE(stats.fail_closed_rejections, 2u);
}

TEST(CrashRecoveryTest, RetiredDatasetStaysRetiredAcrossRestart) {
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  // Room for phase 1 and one release; the second release trips the cap.
  const double cap =
      budget.phase1_epsilon() + 1.5 * budget.phase2_epsilon();
  auto configure = [cap](DisclosureService& service) {
    Configure(service);
    service.odometer().SetBudget("dblp", cap, 0.4);
  };
  const std::string wal_path = ::testing::TempDir() + "/retire.wal";
  std::remove(wal_path.c_str());
  double spent_before_restart = 0.0;
  {
    auto service = DisclosureService::Open(configure, wal_path);
    Rng rng(5);
    ASSERT_TRUE(service->Serve("low", "dblp", budget, rng).granted);
    const ServeResult denied = service->Serve("low", "dblp", budget, rng);
    EXPECT_FALSE(denied.granted);
    EXPECT_NE(denied.denial_reason.find("retired"), std::string::npos)
        << denied.denial_reason;
    EXPECT_TRUE(service->odometer().IsRetired("dblp"));
    EXPECT_EQ(service->durability_stats().dataset_denials, 1u);
    spent_before_restart = service->Ledger("low", "dblp").epsilon_spent();
  }
  {
    auto service = DisclosureService::Open(configure, wal_path);
    // The retirement record replayed: retired BEFORE any request.
    EXPECT_TRUE(service->odometer().IsRetired("dblp"));
    EXPECT_EQ(service->recovery().datasets_retired, 1u);
    // A recovered tenant is refused without being re-charged…
    Rng rng(6);
    const ServeResult denied = service->Serve("low", "dblp", budget, rng);
    EXPECT_FALSE(denied.granted);
    EXPECT_DOUBLE_EQ(service->Ledger("low", "dblp").epsilon_spent(),
                     spent_before_restart);
    // …and a NEW tenant is refused before paying phase 1 for a view it can
    // never draw.
    const ServeResult fresh = service->Serve("high", "dblp", budget, rng);
    EXPECT_FALSE(fresh.granted);
    EXPECT_THROW((void)service->Ledger("high", "dblp"),
                 gdp::common::NotFoundError);
  }
  std::remove(wal_path.c_str());
}

TEST(CrashRecoveryTest, ConcurrentDurableServesKeepTheLogGapFree) {
  const std::string wal_path = ::testing::TempDir() + "/concurrent.wal";
  std::remove(wal_path.c_str());
  auto configure = [](DisclosureService& service) {
    service.catalog().Register("dblp", SmallDataset());
    for (int t = 0; t < 4; ++t) {
      service.broker().Register("t" + std::to_string(t),
                                TenantProfile{50.0, 0.4, t});
    }
  };
  const gdp::core::BudgetSpec budget = SmallSpec().budget;
  {
    auto service = DisclosureService::Open(configure, wal_path);
    // Warm the registry so threads race on the WAL, not the compile.
    Rng warm_rng(1);
    ASSERT_TRUE(service->Serve("t0", "dblp", budget, warm_rng).granted);
    std::vector<std::thread> threads;
    std::vector<int> served(4, 0);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(400 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < 3; ++i) {
          const ServeResult r =
              service->Serve("t" + std::to_string(t), "dblp", budget, rng);
          served[static_cast<std::size_t>(t)] += r.granted ? 1 : 0;
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(served[static_cast<std::size_t>(t)], 3);
    }
    // 4 opens + 13 charges (t0 warmed once).
    EXPECT_EQ(service->durability_stats().wal_appends, 17u);
    EXPECT_FALSE(service->failed_closed());
  }
  FileStorage reader(wal_path);
  const WalReplayResult replay = AuditWal::Replay(reader.ReadAll());
  EXPECT_EQ(replay.records.size(), 17u);
  EXPECT_FALSE(replay.sequence_gap);
  EXPECT_FALSE(replay.torn_tail());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace gdp::serve
