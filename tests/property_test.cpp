// Property-style TEST_P sweeps over parameter grids: calibration curves,
// privacy-relevant invariants, and pipeline structure across configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/group_sensitivity.hpp"
#include "core/pipeline.hpp"
#include "dp/gaussian.hpp"
#include "graph/generators.hpp"
#include "graph/projection.hpp"
#include "hier/specialization.hpp"

namespace gdp {
namespace {

using common::Rng;

// ---------- Gaussian calibration curve over an (eps, delta) grid ----------

class GaussianCalibrationProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GaussianCalibrationProperty, AnalyticSigmaAchievesDelta) {
  const auto [eps, delta] = GetParam();
  const dp::L2Sensitivity sens(123.0);
  const double sigma =
      dp::AnalyticGaussianSigma(dp::Epsilon(eps), dp::Delta(delta), sens);
  const double achieved = dp::GaussianDeltaForSigma(sigma, dp::Epsilon(eps), sens);
  EXPECT_LE(achieved, delta * 1.001) << "eps=" << eps << " delta=" << delta;
}

TEST_P(GaussianCalibrationProperty, ClassicSigmaNeverBelowAnalytic) {
  const auto [eps, delta] = GetParam();
  if (eps >= 1.0) {
    GTEST_SKIP() << "classic calibration only valid below eps=1";
  }
  const dp::L2Sensitivity sens(123.0);
  EXPECT_GE(dp::ClassicGaussianSigma(dp::Epsilon(eps), dp::Delta(delta), sens),
            dp::AnalyticGaussianSigma(dp::Epsilon(eps), dp::Delta(delta), sens));
}

TEST_P(GaussianCalibrationProperty, SigmaScalesLinearlyWithSensitivity) {
  const auto [eps, delta] = GetParam();
  const double s1 = dp::AnalyticGaussianSigma(dp::Epsilon(eps), dp::Delta(delta),
                                              dp::L2Sensitivity(10.0));
  const double s2 = dp::AnalyticGaussianSigma(dp::Epsilon(eps), dp::Delta(delta),
                                              dp::L2Sensitivity(1000.0));
  EXPECT_NEAR(s2 / s1, 100.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    EpsDeltaGrid, GaussianCalibrationProperty,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.999, 2.0, 8.0),
                       ::testing::Values(1e-7, 1e-5, 1e-3)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
      // NOTE: no structured bindings here -- the comma inside [eps, delta]
      // would split the macro argument.
      std::string name = "eps" + std::to_string(std::get<0>(info.param)) +
                         "_delta" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '.' || c == '-') {
          c = '_';
        }
      }
      return name;
    });

// ---------- empirical eps-DP of Laplace over an eps grid ----------

class LaplacePrivacyProperty : public ::testing::TestWithParam<double> {};

TEST_P(LaplacePrivacyProperty, LikelihoodRatioWithinExpEps) {
  const double eps = GetParam();
  // Exact density ratio check: for Laplace(b = 1/eps) centred at 0 vs 1,
  // the log-density difference at any x is bounded by eps * Delta = eps.
  const double b = 1.0 / eps;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double log_ratio = (std::fabs(x - 1.0) - std::fabs(x)) / b;
    EXPECT_LE(std::fabs(log_ratio), eps * 1.0000001) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsGrid, LaplacePrivacyProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

// ---------- pipeline invariants across configuration grid ----------

struct PipelineGridParam {
  int depth;
  int arity;
  core::NoiseKind noise;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineGridParam> {
 protected:
  static graph::BipartiteGraph MakeGraph() {
    Rng rng(555);
    graph::DblpLikeParams p;
    p.num_left = 600;
    p.num_right = 800;
    p.num_edges = 4000;
    return GenerateDblpLike(p, rng);
  }
};

TEST_P(PipelineProperty, StructureAndBudgetInvariants) {
  const auto param = GetParam();
  const graph::BipartiteGraph g = MakeGraph();
  core::DisclosureConfig cfg;
  cfg.depth = param.depth;
  cfg.arity = param.arity;
  cfg.noise = param.noise;
  Rng rng(777);
  const core::DisclosureResult result = core::RunDisclosure(g, cfg, rng);

  // (1) one release per level, levels ascending.
  EXPECT_EQ(result.release.num_levels(), param.depth + 1);
  // (2) sensitivities non-decreasing in level.
  const auto sens = result.hierarchy.LevelSensitivities(g);
  for (std::size_t i = 1; i < sens.size(); ++i) {
    EXPECT_GE(sens[i], sens[i - 1]);
  }
  // (3) per-level group-count vectors pair with the hierarchy.
  for (int lvl = 0; lvl <= param.depth; ++lvl) {
    EXPECT_EQ(result.release.level(lvl).noisy_group_counts.size(),
              result.hierarchy.level(lvl).num_groups());
  }
  // (4) budget conserved.
  EXPECT_LE(result.ledger.epsilon_spent(), cfg.epsilon_g + 1e-9);
  // (5) every level's noisy answer is finite.
  for (const auto& lvl : result.release.levels()) {
    EXPECT_TRUE(std::isfinite(lvl.noisy_total));
  }
}

TEST_P(PipelineProperty, RefinementHoldsAtEveryLevel) {
  const auto param = GetParam();
  const graph::BipartiteGraph g = MakeGraph();
  core::DisclosureConfig cfg;
  cfg.depth = param.depth;
  cfg.arity = param.arity;
  cfg.noise = param.noise;
  cfg.validate_hierarchy = false;  // we re-validate by hand below
  Rng rng(888);
  const core::DisclosureResult result = core::RunDisclosure(g, cfg, rng);
  for (int lvl = 1; lvl <= param.depth; ++lvl) {
    EXPECT_TRUE(result.hierarchy.level(lvl).IsRefinedBy(
        result.hierarchy.level(lvl - 1)))
        << "level " << lvl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, PipelineProperty,
    ::testing::Values(PipelineGridParam{3, 2, core::NoiseKind::kGaussian},
                      PipelineGridParam{5, 4, core::NoiseKind::kGaussian},
                      PipelineGridParam{7, 4, core::NoiseKind::kLaplace},
                      PipelineGridParam{4, 8, core::NoiseKind::kGaussian},
                      PipelineGridParam{6, 2, core::NoiseKind::kGeometric}),
    [](const ::testing::TestParamInfo<PipelineGridParam>& info) {
      return "d" + std::to_string(info.param.depth) + "_a" +
             std::to_string(info.param.arity) + "_" +
             core::NoiseKindName(info.param.noise);
    });

// ---------- truncation cap grid ----------

class TruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TruncationProperty, CapBoundsSensitivityAtSingletonLevel) {
  const auto cap = static_cast<graph::EdgeCount>(GetParam());
  Rng grng(999);
  graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 400;
  p.num_edges = 5000;
  const graph::BipartiteGraph g = GenerateDblpLike(p, grng);
  Rng rng(1001);
  const auto projected = graph::TruncateDegreesBothSides(g, cap, rng);
  // After projection, singleton-level sensitivity is at most the cap.
  const auto singles = hier::Partition::Singletons(400, 400);
  EXPECT_LE(core::CountSensitivity(projected.graph, singles), cap);
}

INSTANTIATE_TEST_SUITE_P(CapGrid, TruncationProperty,
                         ::testing::Values(1, 2, 5, 10, 50));

// ---------- DP degree-cap estimation ----------

TEST(EstimateDegreeCapDpTest, CapCoversTypicalNodes) {
  Rng grng(31);
  graph::DblpLikeParams p;
  p.num_left = 2000;
  p.num_right = 2000;
  p.num_edges = 20000;
  const graph::BipartiteGraph g = GenerateDblpLike(p, grng);
  Rng rng(37);
  const auto cap =
      core::EstimateDegreeCapDp(g, dp::Epsilon(1.0), 0.99, 1.5, rng);
  EXPECT_GE(cap, 1u);
  // With a 99th-pct cap, the projection should drop only a small fraction.
  Rng prng(41);
  const auto projected = graph::TruncateDegreesBothSides(g, cap, prng);
  EXPECT_LT(static_cast<double>(projected.edges_dropped),
            0.2 * static_cast<double>(g.num_edges()));
}

TEST(EstimateDegreeCapDpTest, RejectsBadHeadroom) {
  const graph::BipartiteGraph g(2, 2, {{0, 0}});
  Rng rng(1);
  EXPECT_THROW(
      (void)core::EstimateDegreeCapDp(g, dp::Epsilon(1.0), 0.99, 0.5, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace gdp
