#include "dp/sparse_vector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;

TEST(SparseVectorTest, RejectsZeroPositives) {
  Rng rng(1);
  EXPECT_THROW(SparseVector(Epsilon(1.0), L1Sensitivity(1.0), 0.0, 0, rng),
               std::invalid_argument);
}

TEST(SparseVectorTest, ObviousQueriesClassifiedCorrectly) {
  Rng rng(2);
  SparseVector sv(Epsilon(10.0), L1Sensitivity(1.0), 100.0, 5, rng);
  EXPECT_FALSE(sv.Process(0.0));     // far below
  EXPECT_TRUE(sv.Process(200.0));    // far above
  EXPECT_EQ(sv.positives_used(), 1u);
}

TEST(SparseVectorTest, ExhaustsAfterMaxPositives) {
  Rng rng(3);
  SparseVector sv(Epsilon(10.0), L1Sensitivity(1.0), 10.0, 2, rng);
  EXPECT_TRUE(sv.Process(1000.0));
  EXPECT_TRUE(sv.Process(1000.0));
  EXPECT_THROW((void)sv.Process(1000.0), gdp::common::BudgetExhaustedError);
}

TEST(SparseVectorTest, NegativeAnswersAreFree) {
  Rng rng(4);
  SparseVector sv(Epsilon(10.0), L1Sensitivity(1.0), 1000.0, 1, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sv.Process(-1000.0));
  }
  EXPECT_EQ(sv.positives_used(), 0u);
  EXPECT_TRUE(sv.Process(5000.0));  // budget still available
}

TEST(SparseVectorTest, BorderlineQueriesAreNoisy) {
  // Exactly at the threshold, answers should split both ways across
  // instantiations (the threshold itself is perturbed).
  int above = 0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(seed);
    SparseVector sv(Epsilon(0.5), L1Sensitivity(1.0), 50.0, 1, rng);
    above += sv.Process(50.0) ? 1 : 0;
  }
  EXPECT_GT(above, 100);
  EXPECT_LT(above, 300);
}

TEST(SparseVectorTest, AccessorsReportConfiguration) {
  Rng rng(5);
  const SparseVector sv(Epsilon(1.0), L1Sensitivity(2.0), 42.0, 3, rng);
  EXPECT_EQ(sv.max_positives(), 3u);
  EXPECT_DOUBLE_EQ(sv.threshold(), 42.0);
}

}  // namespace
}  // namespace gdp::dp
