#include "core/release_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"

namespace gdp::core {
namespace {

MultiLevelRelease SampleRelease(bool with_groups = true) {
  std::vector<LevelRelease> levels;
  for (int i = 0; i < 3; ++i) {
    LevelRelease lr;
    lr.level = i;
    lr.sensitivity = 10.0 * (i + 1);
    lr.noise_stddev = 2.5 * (i + 1);
    lr.group_noise_stddev = 3.5 * (i + 1);
    lr.true_total = 1000.0;
    lr.noisy_total = 1000.0 + 7.25 * i;
    if (with_groups && i == 1) {
      lr.true_group_counts = {400.0, 600.0};
      lr.noisy_group_counts = {401.5, 596.25};
    }
    levels.push_back(std::move(lr));
  }
  return MultiLevelRelease(std::move(levels));
}

TEST(ReleaseIoTest, RoundTripsThroughStream) {
  const MultiLevelRelease r = SampleRelease();
  std::stringstream ss;
  WriteRelease(r, ss);
  const MultiLevelRelease back = ReadRelease(ss);
  ASSERT_EQ(back.num_levels(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back.level(i).sensitivity, r.level(i).sensitivity);
    EXPECT_DOUBLE_EQ(back.level(i).noise_stddev, r.level(i).noise_stddev);
    EXPECT_DOUBLE_EQ(back.level(i).group_noise_stddev,
                     r.level(i).group_noise_stddev);
    EXPECT_DOUBLE_EQ(back.level(i).noisy_total, r.level(i).noisy_total);
    EXPECT_EQ(back.level(i).noisy_group_counts, r.level(i).noisy_group_counts);
    EXPECT_EQ(back.level(i).true_group_counts, r.level(i).true_group_counts);
  }
}

TEST(ReleaseIoTest, RoundTripsRealPipelineOutput) {
  gdp::common::Rng rng(3);
  const auto g = gdp::graph::GenerateUniformRandom(200, 200, 2000, rng);
  DisclosureConfig cfg;
  cfg.depth = 4;
  const DisclosureResult result = RunDisclosure(g, cfg, rng);
  std::stringstream ss;
  WriteRelease(result.release, ss);
  const MultiLevelRelease back = ReadRelease(ss);
  ASSERT_EQ(back.num_levels(), result.release.num_levels());
  for (int i = 0; i < back.num_levels(); ++i) {
    EXPECT_DOUBLE_EQ(back.level(i).noisy_total,
                     result.release.level(i).noisy_total);
    EXPECT_EQ(back.level(i).noisy_group_counts.size(),
              result.release.level(i).noisy_group_counts.size());
  }
}

TEST(ReleaseIoTest, StrippedReleaseRoundTrips) {
  const MultiLevelRelease pub = SampleRelease().StripTruth();
  std::stringstream ss;
  WriteRelease(pub, ss);
  const MultiLevelRelease back = ReadRelease(ss);
  EXPECT_EQ(back.level(1).true_group_counts, (std::vector<double>{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(back.level(1).noisy_group_counts[0], 401.5);
}

TEST(ReleaseIoTest, CommentsAreSkipped) {
  const MultiLevelRelease r = SampleRelease(false);
  std::stringstream ss;
  ss << "# produced by unit test\n";
  WriteRelease(r, ss);
  const MultiLevelRelease back = ReadRelease(ss);
  EXPECT_EQ(back.num_levels(), 3);
}

TEST(ReleaseIoTest, BadMagicThrows) {
  std::istringstream in("not-a-release\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, TruncatedInputThrows) {
  std::istringstream in("gdp-release v1\nlevels 2\nlevel 0 1 1 1 1 1 0\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, ShortLevelLineThrows) {
  // Old 6-field format (missing group_noise_stddev) must be rejected.
  std::istringstream in("gdp-release v1\nlevels 1\nlevel 0 1 1 1 1 0\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, BadLevelCountThrows) {
  std::istringstream in("gdp-release v1\nlevels 0\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, ImplausibleLevelCountRejectedBeforeAllocation) {
  // A corrupt header must not drive a gigabyte-scale reserve: the count is
  // bounds-checked before any container is sized.
  std::istringstream in("gdp-release v1\nlevels 2000000000\nlevel 0 1 1 1 1 1 0\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, GroupCountBeyondLineCapacityRejectedBeforeResize) {
  // Declared 4e9 groups backed by a 20-character line: each (true, noisy)
  // pair needs at least 4 characters, so this is malformed by construction
  // and must be rejected before the giant resize, not after.
  std::istringstream in(
      "gdp-release v1\nlevels 1\nlevel 0 1 1 1 1 1 4000000000\n"
      "group_counts 0 1 1\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, MaximalGroupCountForLineStillParses) {
  // Boundary sanity: a legitimate line is never rejected by the capacity
  // bound (every pair costs more than the 4 characters the bound assumes).
  const MultiLevelRelease r = SampleRelease();
  std::stringstream ss;
  WriteRelease(r, ss);
  EXPECT_NO_THROW((void)ReadRelease(ss));
}

TEST(ReleaseIoTest, TruncatedGroupCountsThrow) {
  std::istringstream in(
      "gdp-release v1\nlevels 1\nlevel 0 1 1 1 1 1 2\ngroup_counts 0 1 1\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, MismatchedGroupLevelEchoThrows) {
  std::istringstream in(
      "gdp-release v1\nlevels 1\nlevel 0 1 1 1 1 1 1\ngroup_counts 5 1 1\n");
  EXPECT_THROW((void)ReadRelease(in), gdp::common::IoError);
}

TEST(ReleaseIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gdp_release_test.tsv";
  const MultiLevelRelease r = SampleRelease();
  WriteReleaseFile(r, path);
  const MultiLevelRelease back = ReadReleaseFile(path);
  EXPECT_EQ(back.num_levels(), 3);
  std::remove(path.c_str());
}

TEST(ReleaseIoTest, MissingFileThrows) {
  EXPECT_THROW((void)ReadReleaseFile("/nonexistent/release.tsv"),
               gdp::common::IoError);
}

}  // namespace
}  // namespace gdp::core
