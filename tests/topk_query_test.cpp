#include "query/topk_query.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::query {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::graph::NodeIndex;
using gdp::hier::GroupId;
using gdp::hier::GroupInfo;
using gdp::hier::kNoParent;

// 8 left groups of 4 nodes with sharply different weights; right side one
// group.
struct Fixture {
  BipartiteGraph graph;
  gdp::hier::Partition level;
};

Fixture MakeFixture() {
  // Left group g (nodes 4g..4g+3) gets (g+1)^2 edges spread over its nodes.
  std::vector<gdp::graph::Edge> edges;
  NodeIndex right = 0;
  for (GroupId g = 0; g < 8; ++g) {
    const int weight = static_cast<int>((g + 1) * (g + 1));
    for (int e = 0; e < weight; ++e) {
      edges.push_back({static_cast<NodeIndex>(4 * g + (e % 4)),
                       static_cast<NodeIndex>(right++ % 300)});
    }
  }
  BipartiteGraph graph(32, 300, std::move(edges));
  std::vector<GroupId> left_labels(32);
  for (NodeIndex v = 0; v < 32; ++v) {
    left_labels[v] = v / 4;
  }
  std::vector<GroupId> right_labels(300, 8);
  std::vector<GroupInfo> infos;
  for (GroupId g = 0; g < 8; ++g) {
    infos.push_back(GroupInfo{gdp::graph::Side::kLeft, 4, kNoParent});
  }
  infos.push_back(GroupInfo{gdp::graph::Side::kRight, 300, kNoParent});
  return Fixture{std::move(graph),
                 gdp::hier::Partition(std::move(left_labels),
                                      std::move(right_labels), std::move(infos))};
}

TEST(TopKQueryTest, ValidatesK) {
  const Fixture f = MakeFixture();
  Rng rng(1);
  EXPECT_THROW(
      (void)SelectTopKGroups(f.graph, f.level, 0, gdp::dp::Epsilon(1.0), rng),
      std::invalid_argument);
  EXPECT_THROW(
      (void)SelectTopKGroups(f.graph, f.level, 10, gdp::dp::Epsilon(1.0), rng),
      std::invalid_argument);
}

TEST(TopKQueryTest, ReturnsKDistinctGroups) {
  const Fixture f = MakeFixture();
  Rng rng(3);
  const TopKResult r =
      SelectTopKGroups(f.graph, f.level, 4, gdp::dp::Epsilon(2.0), rng);
  EXPECT_EQ(r.groups.size(), 4u);
  const std::unordered_set<GroupId> distinct(r.groups.begin(), r.groups.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_DOUBLE_EQ(r.epsilon_spent, 2.0);
}

TEST(TopKQueryTest, HighEpsilonFindsTrueTopK) {
  const Fixture f = MakeFixture();
  Rng rng(5);
  // With huge budget, selection should be essentially exact.  The heaviest
  // groups are the right-side catch-all (id 8, weight 204 = every edge),
  // then left groups 7 (weight 64) and 6 (weight 49).
  const TopKResult r =
      SelectTopKGroups(f.graph, f.level, 3, gdp::dp::Epsilon(500.0), rng);
  const std::unordered_set<GroupId> got(r.groups.begin(), r.groups.end());
  EXPECT_TRUE(got.contains(8));
  EXPECT_TRUE(got.contains(7));
  EXPECT_TRUE(got.contains(6));
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
}

TEST(TopKQueryTest, PrecisionDegradesGracefullyWithBudget) {
  const Fixture f = MakeFixture();
  const auto mean_precision = [&](double eps) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      Rng rng(seed);
      total += SelectTopKGroups(f.graph, f.level, 3, gdp::dp::Epsilon(eps), rng)
                   .precision;
    }
    return total / 40.0;
  };
  // Richer budget must not hurt; with a heavy-weight fixture even modest
  // budgets should do fairly well.
  EXPECT_GE(mean_precision(50.0), mean_precision(0.01) - 0.05);
  EXPECT_GT(mean_precision(50.0), 0.6);
}

TEST(TopKQueryTest, EdgelessGraphHandled) {
  const BipartiteGraph g(8, 8, {});
  const auto level = gdp::hier::Partition::TopLevel(8, 8);
  Rng rng(7);
  const TopKResult r = SelectTopKGroups(g, level, 2, gdp::dp::Epsilon(1.0), rng);
  EXPECT_EQ(r.groups.size(), 2u);
}

TEST(TopKQueryTest, SelectingAllGroupsIsPermutation) {
  const Fixture f = MakeFixture();
  Rng rng(9);
  const TopKResult r =
      SelectTopKGroups(f.graph, f.level, 9, gdp::dp::Epsilon(1.0), rng);
  std::vector<GroupId> sorted = r.groups;
  std::sort(sorted.begin(), sorted.end());
  for (GroupId g = 0; g < 9; ++g) {
    EXPECT_EQ(sorted[g], g);
  }
  EXPECT_DOUBLE_EQ(r.precision, 1.0);  // all groups selected = trivially exact
}

}  // namespace
}  // namespace gdp::query
