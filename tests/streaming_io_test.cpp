// The streaming large-graph path: chunked generation, two-pass bounded-RSS
// CSR build, chunked CRC verification, streamed snapshot writing, and the
// 32-bit capacity guards.  Every streaming variant here has a materializing
// twin, and the contract under test is always the same: IDENTICAL output,
// bounded memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli/commands.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "storage/snapshot.hpp"

namespace gdp::graph {
namespace {

using gdp::common::CapacityError;
using gdp::common::Crc32;
using gdp::common::Crc32Chunked;
using gdp::common::Rng;

DblpLikeParams StreamParams() {
  DblpLikeParams p;
  p.num_left = 700;
  p.num_right = 900;
  p.num_edges = 12'345;
  return p;
}

std::vector<Edge> CollectStream(std::size_t chunk_edges, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> all;
  GenerateDblpLikeStream(StreamParams(), rng, chunk_edges,
                         [&](std::span<const Edge> chunk) {
                           all.insert(all.end(), chunk.begin(), chunk.end());
                         });
  return all;
}

std::uint32_t EdgeCrc(const std::vector<Edge>& edges) {
  return Crc32(std::string_view(
      reinterpret_cast<const char*>(edges.data()),  // NOLINT
      edges.size() * sizeof(Edge)));
}

TEST(StreamGeneratorTest, ChunkSizeNeverChangesTheEdgeStream) {
  const std::vector<Edge> reference = CollectStream(1 << 20, 99);
  ASSERT_EQ(reference.size(), StreamParams().num_edges);
  const std::uint32_t ref_crc = EdgeCrc(reference);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, std::size_t{12'345}}) {
    EXPECT_EQ(EdgeCrc(CollectStream(chunk, 99)), ref_crc)
        << "chunk_edges=" << chunk;
  }
}

TEST(StreamGeneratorTest, SameSeedSameStreamDifferentSeedDifferent) {
  EXPECT_EQ(EdgeCrc(CollectStream(512, 4)), EdgeCrc(CollectStream(512, 4)));
  EXPECT_NE(EdgeCrc(CollectStream(512, 4)), EdgeCrc(CollectStream(512, 5)));
}

TEST(StreamGeneratorTest, RejectsZeroChunkAndEmptySides) {
  Rng rng(1);
  const auto sink = [](std::span<const Edge>) {};
  EXPECT_THROW(GenerateDblpLikeStream(StreamParams(), rng, 0, sink),
               std::invalid_argument);
  DblpLikeParams bad = StreamParams();
  bad.num_left = 0;
  EXPECT_THROW(GenerateDblpLikeStream(bad, rng, 16, sink),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Two-pass streaming reader vs the one-pass materializing reader.
// ---------------------------------------------------------------------------

void ExpectGraphsIdentical(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.num_left(), b.num_left());
  ASSERT_EQ(a.num_right(), b.num_right());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (const Side side : {Side::kLeft, Side::kRight}) {
    const auto ao = a.offsets(side);
    const auto bo = b.offsets(side);
    EXPECT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()));
    const auto aa = a.adjacency(side);
    const auto ba = b.adjacency(side);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), ba.begin(), ba.end()));
  }
}

TEST(StreamingReaderTest, BitIdenticalToOnePassReader) {
  const std::string path =
      ::testing::TempDir() + "/gdp_streaming_io_parity.tsv";
  Rng rng(21);
  DblpLikeParams p = StreamParams();
  p.allow_parallel_edges = true;  // parallel edges exercise stable ordering
  const BipartiteGraph g = GenerateDblpLike(p, rng);
  WriteEdgeListFile(g, path);
  ExpectGraphsIdentical(ReadEdgeListFileStreaming(path),
                        ReadEdgeListFile(path));
  std::remove(path.c_str());
}

TEST(StreamingReaderTest, AcceptsCommentsRejectsMalformed) {
  const std::string path = ::testing::TempDir() + "/gdp_streaming_io_fmt.tsv";
  {
    std::ofstream f(path);
    f << "# comment\n\n3 2\n0\t1\n# mid comment\n2\t0\n";
  }
  const BipartiteGraph g = ReadEdgeListFileStreaming(path);
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
  {
    std::ofstream f(path);
    f << "3 2\n0\tnope\n";
  }
  EXPECT_THROW((void)ReadEdgeListFileStreaming(path), gdp::common::IoError);
  {
    std::ofstream f(path);
    f << "3 2\n5\t0\n";  // endpoint out of range
  }
  EXPECT_THROW((void)ReadEdgeListFileStreaming(path), gdp::common::IoError);
  std::remove(path.c_str());
}

TEST(StreamingReaderTest, MissingFileThrows) {
  EXPECT_THROW((void)ReadEdgeListFileStreaming("/nonexistent/gdp.tsv"),
               gdp::common::IoError);
}

// ---------------------------------------------------------------------------
// Chunked CRC: algebraically identical to one-shot at every split point.
// ---------------------------------------------------------------------------

TEST(Crc32ChunkedTest, EveryChunkSizeMatchesOneShot) {
  std::string data(100'003, '\0');
  Rng rng(8);
  for (char& c : data) {
    c = static_cast<char>(rng() & 0xFF);
  }
  const std::uint32_t one_shot = Crc32(data);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{64},
        std::size_t{4096}, std::size_t{100'002}, std::size_t{1} << 22}) {
    EXPECT_EQ(Crc32Chunked(data, chunk), one_shot) << "chunk=" << chunk;
  }
  // Seed chaining survives chunking too.
  const std::uint32_t seeded = Crc32(data, 0xDEADBEEF);
  EXPECT_EQ(Crc32Chunked(data, 977, 0xDEADBEEF), seeded);
}

TEST(Crc32ChunkedTest, EmptyAndZeroChunkDegradeToOneShot) {
  EXPECT_EQ(Crc32Chunked("", 16), Crc32(""));
  EXPECT_EQ(Crc32Chunked("abc", 0), Crc32("abc"));
  EXPECT_EQ(Crc32Chunked("", 16, 123u), Crc32("", 123u));
}

// ---------------------------------------------------------------------------
// 32-bit capacity guards: reject BEFORE allocation, with a typed error.
// ---------------------------------------------------------------------------

TEST(CapacityTest, CheckedNodeCountBoundary) {
  EXPECT_EQ(CheckedNodeCount(0, "n"), 0u);
  EXPECT_EQ(CheckedNodeCount((std::uint64_t{1} << 32) - 1, "n"),
            0xFFFFFFFFu);
  EXPECT_THROW((void)CheckedNodeCount(std::uint64_t{1} << 32, "n"),
               CapacityError);
  EXPECT_THROW((void)CheckedNodeCount(~std::uint64_t{0}, "n"), CapacityError);
  try {
    (void)CheckedNodeCount(std::uint64_t{1} << 32, "num_left");
    FAIL() << "expected CapacityError";
  } catch (const CapacityError& e) {
    EXPECT_NE(std::string(e.what()).find("num_left"), std::string::npos);
  }
}

TEST(CapacityTest, GenerateCliRejectsOversizedCounts) {
  const std::string path = ::testing::TempDir() + "/gdp_streaming_io_cap.tsv";
  std::ostringstream out;
  // 2^32 left nodes: must throw the typed error BEFORE the generator ever
  // sizes a permutation array from it (an accidental allocation of 2^32
  // NodeIndex entries would be a 16 GiB surprise).
  EXPECT_THROW(gdp::cli::Dispatch({"generate", "--out", path, "--left",
                                   "4294967296", "--right", "10", "--edges",
                                   "5"},
                                  out),
               CapacityError);
  EXPECT_THROW(gdp::cli::Dispatch({"generate", "--out", path, "--left", "-3"},
                                  out),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CLI --stream path and the streamed snapshot writer.
// ---------------------------------------------------------------------------

TEST(StreamingCliTest, StreamedGenerateFeedsStreamedPack) {
  const std::string tsv = ::testing::TempDir() + "/gdp_streaming_cli.tsv";
  const std::string snap = ::testing::TempDir() + "/gdp_streaming_cli.gdps";
  std::ostringstream out;
  ASSERT_EQ(gdp::cli::Dispatch({"generate", "--out", tsv, "--left", "300",
                                "--right", "400", "--edges", "9000", "--seed",
                                "7", "--stream"},
                               out),
            0);
  EXPECT_NE(out.str().find("streamed"), std::string::npos);
  // The streamed file is a valid edge list with exactly the requested shape
  // (no dedup: all 9000 samples land).
  const BipartiteGraph g = ReadEdgeListFileStreaming(tsv);
  EXPECT_EQ(g.num_left(), 300u);
  EXPECT_EQ(g.num_right(), 400u);
  EXPECT_EQ(g.num_edges(), 9000u);
  // pack (now the streaming reader + streaming snapshot writer) round-trips
  // it with --verify's CRC + byte-compare re-load.
  std::ostringstream pack_out;
  ASSERT_EQ(gdp::cli::Dispatch(
                {"pack", "--graph", tsv, "--out", snap, "--verify"}, pack_out),
            0);
  EXPECT_NE(pack_out.str().find("verify OK"), std::string::npos);
  std::remove(tsv.c_str());
  std::remove(snap.c_str());
}

TEST(StreamingSnapshotTest, StreamedFileByteIdenticalToSerializeSnapshot) {
  Rng rng(31);
  const BipartiteGraph g = GenerateUniformRandom(500, 600, 4000, rng);
  gdp::storage::SnapshotContents contents;
  contents.graph = &g;
  const std::vector<std::byte> expected =
      gdp::storage::SerializeSnapshot(contents);
  const std::string path =
      ::testing::TempDir() + "/gdp_streaming_snapshot.gdps";
  gdp::storage::WriteSnapshotFile(path, contents);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string on_disk = buf.str();
  ASSERT_EQ(on_disk.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(on_disk.data(), expected.data(), expected.size()));
  // And the streamed file loads through the (chunk-verifying) loader.
  const auto snap = gdp::storage::Snapshot::Load(path);
  EXPECT_EQ(snap->graph().num_edges(), g.num_edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdp::graph
