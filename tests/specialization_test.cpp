#include "hier/specialization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::hier {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::graph::EdgeCount;

TEST(CutCandidatesTest, SmallGroupEnumeratesAllPositions) {
  const auto cuts = CutCandidates(5, 63);
  EXPECT_EQ(cuts, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(CutCandidatesTest, TooSmallGroupsHaveNoCuts) {
  EXPECT_TRUE(CutCandidates(0, 63).empty());
  EXPECT_TRUE(CutCandidates(1, 63).empty());
}

TEST(CutCandidatesTest, LargeGroupIsSubsampled) {
  const auto cuts = CutCandidates(100000, 63);
  EXPECT_LE(cuts.size(), 63u);
  EXPECT_GE(cuts.size(), 32u);
  for (const auto c : cuts) {
    EXPECT_GE(c, 1u);
    EXPECT_LT(c, 100000u);
  }
  // Strictly increasing.
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
}

TEST(CutCandidatesTest, RejectsBadMaxCandidates) {
  EXPECT_THROW((void)CutCandidates(10, 0), std::invalid_argument);
}

TEST(CutUtilitiesTest, EdgeBalancePrefersBalancedCut) {
  const std::vector<EdgeCount> degrees{4, 1, 1, 1, 1};  // total 8
  const std::vector<std::size_t> cuts{1, 2, 3, 4};
  const auto u = CutUtilities(degrees, cuts, SplitQuality::kEdgeBalance);
  // Cut at 1: |4-4| = 0 (best).  Cut at 4: |7-1| = 6 (worst).
  EXPECT_DOUBLE_EQ(u[0], 0.0);
  EXPECT_DOUBLE_EQ(u[3], -6.0);
  EXPECT_GT(u[0], u[1]);
}

TEST(CutUtilitiesTest, NodeBalanceIgnoresDegrees) {
  const std::vector<EdgeCount> degrees{100, 0, 0, 0};
  const std::vector<std::size_t> cuts{1, 2, 3};
  const auto u = CutUtilities(degrees, cuts, SplitQuality::kNodeBalance);
  EXPECT_DOUBLE_EQ(u[1], 0.0);  // 2 vs 2
  EXPECT_DOUBLE_EQ(u[0], -2.0);
  EXPECT_DOUBLE_EQ(u[2], -2.0);
}

TEST(CutUtilitiesTest, RandomQualityIsFlat) {
  const std::vector<EdgeCount> degrees{5, 1, 9};
  const std::vector<std::size_t> cuts{1, 2};
  const auto u = CutUtilities(degrees, cuts, SplitQuality::kRandom);
  EXPECT_EQ(u, (std::vector<double>{0.0, 0.0}));
}

TEST(CutUtilitiesTest, RejectsOutOfRangeCut) {
  const std::vector<EdgeCount> degrees{1, 1};
  const std::vector<std::size_t> bad_zero{0};
  const std::vector<std::size_t> bad_end{2};
  EXPECT_THROW((void)CutUtilities(degrees, bad_zero, SplitQuality::kEdgeBalance),
               std::invalid_argument);
  EXPECT_THROW((void)CutUtilities(degrees, bad_end, SplitQuality::kEdgeBalance),
               std::invalid_argument);
}

TEST(SpecializerConfigTest, Validation) {
  SpecializationConfig cfg;
  cfg.depth = 0;
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
  cfg = SpecializationConfig{};
  cfg.arity = 3;  // not a power of two
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
  cfg = SpecializationConfig{};
  cfg.arity = 1;
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
  cfg = SpecializationConfig{};
  cfg.epsilon_per_level = 0.0;
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
  cfg = SpecializationConfig{};
  cfg.utility_sensitivity = -1.0;
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
  cfg = SpecializationConfig{};
  cfg.max_cut_candidates = 0;
  EXPECT_THROW(Specializer{cfg}, std::invalid_argument);
}

TEST(SpecializerTest, BuildsValidatedHierarchyOfRequestedDepth) {
  Rng rng(3);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(128, 128, 2000, rng);
  SpecializationConfig cfg;
  cfg.depth = 6;
  cfg.arity = 4;
  const Specializer spec(cfg);
  Rng build_rng(7);
  const auto result = spec.BuildHierarchy(g, build_rng);
  EXPECT_EQ(result.hierarchy.depth(), 6);
  // Validation happens inside GroupHierarchy's constructor (would throw).
}

TEST(SpecializerTest, GroupCountsGrowGeometricallyDownTheLevels) {
  Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(256, 256, 4000, rng);
  SpecializationConfig cfg;
  cfg.depth = 5;
  cfg.arity = 4;
  const Specializer spec(cfg);
  Rng build_rng(9);
  const auto result = spec.BuildHierarchy(g, build_rng);
  const auto counts = result.hierarchy.LevelGroupCounts();
  // Level 5 (top): 2 groups; level 4: 8; level 3: 32; level 2: up to 128
  // (groups that bottom out at one node cannot split further).
  EXPECT_EQ(counts[5], 2u);
  EXPECT_EQ(counts[4], 8u);
  EXPECT_EQ(counts[3], 32u);
  EXPECT_LE(counts[2], 128u);
  EXPECT_GE(counts[2], 120u);
  // Level 0: singletons.
  EXPECT_EQ(counts[0], 512u);
}

TEST(SpecializerTest, EpsilonSpentIsTransitionsTimesPerLevel) {
  Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 500, rng);
  SpecializationConfig cfg;
  cfg.depth = 4;
  cfg.epsilon_per_level = 0.03;
  const Specializer spec(cfg);
  Rng build_rng(9);
  const auto result = spec.BuildHierarchy(g, build_rng);
  EXPECT_NEAR(result.epsilon_spent, 3 * 0.03, 1e-12);
  EXPECT_GT(result.num_em_draws, 0u);
}

TEST(SpecializerTest, DeterministicUnderSeed) {
  Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 800, rng);
  SpecializationConfig cfg;
  cfg.depth = 4;
  const Specializer spec(cfg);
  Rng r1(123);
  Rng r2(123);
  const auto a = spec.BuildHierarchy(g, r1);
  const auto b = spec.BuildHierarchy(g, r2);
  for (int lvl = 0; lvl <= 4; ++lvl) {
    const auto& pa = a.hierarchy.level(lvl);
    const auto& pb = b.hierarchy.level(lvl);
    ASSERT_EQ(pa.num_groups(), pb.num_groups()) << "level " << lvl;
    for (gdp::graph::NodeIndex v = 0; v < g.num_left(); ++v) {
      ASSERT_EQ(pa.GroupOf(Side::kLeft, v), pb.GroupOf(Side::kLeft, v));
    }
  }
}

TEST(SpecializerTest, EdgeBalanceBeatsRandomOnSkewedGraph) {
  // On a heavy-tailed graph, edge-balanced splits should yield a smaller
  // max-group-degree-sum at the finest grouped level than random splits,
  // averaged over seeds.
  Rng grng(31);
  gdp::graph::DblpLikeParams p;
  p.num_left = 1500;
  p.num_right = 1500;
  p.num_edges = 9000;
  const BipartiteGraph g = GenerateDblpLike(p, grng);

  const auto avg_sensitivity = [&](SplitQuality q) {
    SpecializationConfig cfg;
    cfg.depth = 4;
    cfg.arity = 4;
    cfg.quality = q;
    cfg.epsilon_per_level = 2.0;  // strong EM so quality dominates noise
    const Specializer spec(cfg);
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng r(seed + 100);
      const auto result = spec.BuildHierarchy(g, r);
      total += static_cast<double>(
          result.hierarchy.level(1).MaxGroupDegreeSum(g));
    }
    return total / 5.0;
  };

  EXPECT_LT(avg_sensitivity(SplitQuality::kEdgeBalance),
            avg_sensitivity(SplitQuality::kRandom));
}

TEST(SpecializerTest, HandlesGraphSmallerThanHierarchy) {
  // 3+3 nodes but depth 6: groups bottom out at singletons early and the
  // build must still produce a valid hierarchy.
  const BipartiteGraph g(3, 3, {{0, 0}, {1, 1}, {2, 2}});
  SpecializationConfig cfg;
  cfg.depth = 6;
  cfg.arity = 4;
  const Specializer spec(cfg);
  Rng rng(2);
  const auto result = spec.BuildHierarchy(g, rng);
  EXPECT_EQ(result.hierarchy.depth(), 6);
  EXPECT_EQ(result.hierarchy.level(0).num_groups(), 6u);
  // Finest grouped level: every group is a singleton already.
  EXPECT_EQ(result.hierarchy.level(1).MaxGroupSize(), 1u);
}

TEST(SpecializerTest, RejectsEmptySide) {
  const BipartiteGraph g(0, 3, {});
  const Specializer spec(SpecializationConfig{});
  Rng rng(1);
  EXPECT_THROW((void)spec.BuildHierarchy(g, rng), std::invalid_argument);
}

TEST(SpecializerTest, SidePurityPreservedAtEveryLevel) {
  Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(32, 48, 400, rng);
  SpecializationConfig cfg;
  cfg.depth = 4;
  const Specializer spec(cfg);
  Rng build_rng(11);
  const auto result = spec.BuildHierarchy(g, build_rng);
  for (int lvl = 0; lvl <= 4; ++lvl) {
    const Partition& part = result.hierarchy.level(lvl);
    // Partition's constructor enforces side purity; double-check counts: the
    // left labels must map only to left groups covering exactly 32 nodes.
    gdp::graph::NodeIndex left_total = 0;
    for (const auto& info : part.groups()) {
      if (info.side == Side::kLeft) {
        left_total += info.size;
      }
    }
    EXPECT_EQ(left_total, 32u) << "level " << lvl;
  }
}

TEST(SplitQualityNameTest, Names) {
  EXPECT_STREQ(SplitQualityName(SplitQuality::kEdgeBalance), "edge_balance");
  EXPECT_STREQ(SplitQualityName(SplitQuality::kNodeBalance), "node_balance");
  EXPECT_STREQ(SplitQualityName(SplitQuality::kRandom), "random");
}

}  // namespace
}  // namespace gdp::hier
