#include "dp/private_quantile.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;

std::vector<double> Ramp(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return v;
}

TEST(PrivateQuantileTest, ValidatesParameters) {
  Rng rng(1);
  QuantileParams p;
  p.lower_bound = 1.0;
  p.upper_bound = 1.0;
  EXPECT_THROW((void)PrivateQuantile({1.0}, p, Epsilon(1.0), rng),
               std::invalid_argument);
  p = QuantileParams{};
  p.quantile = 1.5;
  EXPECT_THROW((void)PrivateQuantile({0.5}, p, Epsilon(1.0), rng),
               std::invalid_argument);
}

TEST(PrivateQuantileTest, StaysInPublicRange) {
  Rng rng(2);
  QuantileParams p;
  p.quantile = 0.5;
  p.lower_bound = 0.0;
  p.upper_bound = 100.0;
  for (int t = 0; t < 200; ++t) {
    const double q = PrivateQuantile(Ramp(50, 10.0, 90.0), p, Epsilon(1.0), rng);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 100.0);
  }
}

TEST(PrivateQuantileTest, MedianNearTrueMedianAtHighEpsilon) {
  Rng rng(3);
  QuantileParams p;
  p.quantile = 0.5;
  p.lower_bound = 0.0;
  p.upper_bound = 1000.0;
  const auto data = Ramp(999, 0.0, 1000.0);  // true median 500
  gdp::common::RunningStats s;
  for (int t = 0; t < 200; ++t) {
    s.Add(PrivateQuantile(data, p, Epsilon(5.0), rng));
  }
  EXPECT_NEAR(s.mean(), 500.0, 25.0);
}

TEST(PrivateQuantileTest, HighQuantileTracksUpperTail) {
  Rng rng(4);
  QuantileParams p;
  p.quantile = 0.99;
  p.lower_bound = 0.0;
  p.upper_bound = 2000.0;
  const auto data = Ramp(1000, 0.0, 1000.0);
  gdp::common::RunningStats s;
  for (int t = 0; t < 200; ++t) {
    s.Add(PrivateQuantile(data, p, Epsilon(5.0), rng));
  }
  EXPECT_GT(s.mean(), 900.0);
  EXPECT_LT(s.mean(), 1100.0);
}

TEST(PrivateQuantileTest, ClampsOutOfRangeData) {
  Rng rng(5);
  QuantileParams p;
  p.quantile = 1.0;
  p.lower_bound = 0.0;
  p.upper_bound = 10.0;
  // All data above the public range: estimate must stay <= 10.
  const std::vector<double> data(100, 500.0);
  for (int t = 0; t < 50; ++t) {
    EXPECT_LE(PrivateQuantile(data, p, Epsilon(2.0), rng), 10.0);
  }
}

TEST(PrivateQuantileTest, EmptyDataFallsBackToRange) {
  Rng rng(6);
  QuantileParams p;
  p.quantile = 0.5;
  p.lower_bound = 2.0;
  p.upper_bound = 4.0;
  const double q = PrivateQuantile({}, p, Epsilon(1.0), rng);
  EXPECT_GE(q, 2.0);
  EXPECT_LE(q, 4.0);
}

TEST(PrivateQuantileTest, LowerEpsilonSpreadsEstimates) {
  QuantileParams p;
  p.quantile = 0.5;
  p.lower_bound = 0.0;
  p.upper_bound = 1000.0;
  const auto data = Ramp(301, 400.0, 600.0);  // tight cluster, median 500
  const auto spread = [&](double eps) {
    Rng rng(7);
    gdp::common::RunningStats s;
    for (int t = 0; t < 300; ++t) {
      s.Add(PrivateQuantile(data, p, Epsilon(eps), rng));
    }
    return s.stddev();
  };
  EXPECT_GT(spread(0.01), spread(10.0));
}

}  // namespace
}  // namespace gdp::dp
