#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gdp::common {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, ExplicitSizeHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> done;
  pool.Submit([&] { done.set_value(42); });
  EXPECT_EQ(done.get_future().get(), 42);
}

TEST(ThreadPoolTest, SubmitRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Submit({}), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](std::size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Pool must still be fully usable afterwards.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](std::size_t i) { total += static_cast<long>(i); });
  }
  EXPECT_EQ(total.load(), 20L * (49L * 50L / 2L));
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.ParallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

// Regression: ParallelFor from inside a worker used to deadlock (the worker
// blocked waiting on tasks no free sibling could run).  Caller participation
// means the nested call degrades to inline execution instead.
TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 8;
  std::atomic<int> hits{0};
  pool.ParallelFor(kOuter, [&](std::size_t) {
    pool.ParallelFor(kInner, [&](std::size_t) { ++hits; });
  });
  EXPECT_EQ(hits.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPoolTest, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](std::size_t) {
                                  pool.ParallelFor(4, [](std::size_t j) {
                                    if (j == 2) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                                }),
               std::runtime_error);
}

// Regression: if Submit threw mid-dispatch, the already-submitted tasks
// decremented the barrier but the never-submitted ones could not, so the
// waiter blocked forever.  Chunks are now claimed at run time and the caller
// drains whatever the queue never received.
TEST(ThreadPoolTest, SubmitFailureMidDispatchStillCompletesEveryIndex) {
  ThreadPool pool(4);
  pool.FailSubmitAfterForTest(1);  // second helper Submit throws
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Injection disarmed after firing: the pool is fully usable again.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, EverySubmitFailingFallsBackToInlineExecution) {
  ThreadPool pool(4);
  pool.FailSubmitAfterForTest(0);  // very first Submit throws
  std::atomic<int> sum{0};
  pool.ParallelFor(32, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 31 * 32 / 2);
  pool.FailSubmitAfterForTest(-1);
}

TEST(ThreadPoolTest, ChunkedCoversRangeWithExactChunkGeometry) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 103;
  constexpr std::size_t kGrain = 10;
  std::vector<std::atomic<int>> hits(kN);
  std::vector<std::atomic<int>> chunk_of(kN);
  pool.ParallelForChunked(kN, kGrain,
                          [&](std::size_t chunk, std::size_t begin,
                              std::size_t end) {
                            EXPECT_EQ(begin, chunk * kGrain);
                            EXPECT_EQ(end, std::min(kN, begin + kGrain));
                            for (std::size_t i = begin; i < end; ++i) {
                              ++hits[i];
                              chunk_of[i] = static_cast<int>(chunk);
                            }
                          });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(chunk_of[i].load(), static_cast<int>(i / kGrain));
  }
}

TEST(ThreadPoolTest, ChunkedRejectsZeroGrain) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelForChunked(4, 0, [](std::size_t, std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(ThreadPoolTest, ChunkedPropagatesFirstExceptionAndRunsRest) {
  ThreadPool pool(2);
  std::atomic<int> chunks_run{0};
  EXPECT_THROW(pool.ParallelForChunked(40, 4,
                                       [&](std::size_t chunk, std::size_t,
                                           std::size_t) {
                                         ++chunks_run;
                                         if (chunk == 1) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
               std::runtime_error);
  EXPECT_EQ(chunks_run.load(), 10);  // remaining chunks still ran
}

}  // namespace
}  // namespace gdp::common
