#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gdp::common {
namespace {

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, ExplicitSizeHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> done;
  pool.Submit([&] { done.set_value(42); });
  EXPECT_EQ(done.get_future().get(), 42);
}

TEST(ThreadPoolTest, SubmitRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Submit({}), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](std::size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // Pool must still be fully usable afterwards.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](std::size_t i) { total += static_cast<long>(i); });
  }
  EXPECT_EQ(total.load(), 20L * (49L * 50L / 2L));
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.ParallelFor(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

}  // namespace
}  // namespace gdp::common
