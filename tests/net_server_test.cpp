// net::Server end to end over real sockets: every RPC kind, typed denials
// and errors, deterministic overload shedding (queue pause seam), the
// per-tenant in-flight cap, slow-loris and hostile-byte handling, and the
// drain-on-shutdown contract (admitted jobs finish, responses flush, the WAL
// stays consistent).  The concurrent test runs under TSan in CI and pins the
// worker-pool path.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"

namespace gdp::net {
namespace {

using gdp::common::Rng;
using gdp::serve::DisclosureService;
using gdp::serve::TenantProfile;

gdp::graph::BipartiteGraph TestGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = 200;
  p.num_right = 300;
  p.num_edges = 1200;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 4;
  spec.hierarchy.arity = 4;
  return spec;
}

void Configure(DisclosureService& svc) {
  svc.catalog().Register(
      "dblp", gdp::serve::Dataset{TestGraph(), SmallSpec(), 7, {}, {}});
  svc.broker().Register("alice", TenantProfile{50.0, 0.2, 0});
  svc.broker().Register("bob", TenantProfile{50.0, 0.2, 2});
  svc.broker().Register(
      "capped", TenantProfile{50.0, 0.2, 0,
                              gdp::dp::AccountingPolicy::kSequential, 1});
  svc.broker().Register("poor", TenantProfile{0.2, 0.2, 0});
}

std::unique_ptr<DisclosureService> MakeService() {
  auto svc = std::make_unique<DisclosureService>(4);
  Configure(*svc);
  return svc;
}

wire::ServeRequest ServeReq(const std::string& tenant, double eps = 0.3,
                            const std::string& dataset = "dblp") {
  wire::ServeRequest req;
  req.tenant = tenant;
  req.dataset = dataset;
  req.budget.epsilon_g = eps;
  return req;
}

// ---------- raw socket helpers (for bytes no well-behaved client sends) ----

int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

void RawSend(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

// Read whole frames off the socket; nullopt = the server closed first.
std::optional<std::string> RawRecvFrame(int fd, std::string& buffer) {
  char chunk[16 * 1024];
  for (;;) {
    std::optional<std::string> payload = wire::TryDeframe(buffer);
    if (payload.has_value()) {
      return payload;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Magic() { return std::string(wire::kMagic, wire::kMagicSize); }

// ---------- happy paths ----------

TEST(NetServerTest, ServesAllRpcKindsOverOneConnection) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  ASSERT_NE(server.port(), 0);
  Client client(server.port());

  const auto serve = client.Serve(ServeReq("alice"));
  ASSERT_TRUE(serve.ok());
  EXPECT_TRUE(serve.value.granted);
  EXPECT_EQ(serve.value.level, 4);  // tier 0 = coarsest view
  EXPECT_FALSE(serve.value.view.noisy_group_counts.empty());

  wire::SweepRequest sweep;
  sweep.tenant = "alice";
  sweep.dataset = "dblp";
  for (double eps : {0.2, 0.3}) {
    wire::WireBudget budget;
    budget.epsilon_g = eps;
    sweep.budgets.push_back(budget);
  }
  const auto swept = client.Sweep(sweep);
  ASSERT_TRUE(swept.ok());
  ASSERT_EQ(swept.value.outcomes.size(), 2u);
  EXPECT_TRUE(swept.value.outcomes[0].granted);
  EXPECT_TRUE(swept.value.outcomes[1].granted);

  wire::DrilldownRequest drill;
  drill.tenant = "bob";  // tier 2: entitled to L2 on a depth-4 hierarchy
  drill.dataset = "dblp";
  drill.budget.epsilon_g = 0.3;
  drill.side = 0;
  drill.node = 5;
  const auto drilled = client.Drilldown(drill);
  ASSERT_TRUE(drilled.ok());
  EXPECT_TRUE(drilled.value.outcome.granted);
  ASSERT_EQ(drilled.value.chain.size(), 3u);  // L4 -> L3 -> L2, never finer
  EXPECT_EQ(drilled.value.chain.front().level, 4);
  EXPECT_EQ(drilled.value.chain.back().level, 2);

  wire::AnswerRequest answer;
  answer.tenant = "alice";
  answer.dataset = "dblp";
  answer.budget.epsilon_g = 0.3;
  answer.queries.push_back(wire::WireQuery{0, 0, 0});   // association count
  answer.queries.push_back(wire::WireQuery{2, 1, 8});   // degree histogram
  const auto answered = client.Answer(answer);
  ASSERT_TRUE(answered.ok());
  EXPECT_TRUE(answered.value.outcome.granted);
  ASSERT_EQ(answered.value.results.size(), 2u);
  EXPECT_EQ(answered.value.results[0].query_name, "association_count");

  // requests_completed increments AFTER the response is written, so a
  // client that just read reply N may observe N-1 completions briefly.
  while (server.requests_completed() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value.catalog_datasets, 1u);
  EXPECT_EQ(stats.value.broker_tenants, 4u);
  EXPECT_EQ(stats.value.connections_open, 1u);
  EXPECT_EQ(stats.value.requests_enqueued, 4u);
  EXPECT_EQ(stats.value.requests_completed, 4u);
  EXPECT_EQ(stats.value.shed_queue_full, 0u);
  EXPECT_EQ(stats.value.protocol_errors, 0u);
}

TEST(NetServerTest, TypedDenialAndErrorResponses) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  Client client(server.port());

  // A denial is a GRANTED=false serve response, not an error: the ledger
  // refused, the protocol worked.
  const auto denied = client.Serve(ServeReq("poor", 5.0));
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied.value.granted);
  EXPECT_FALSE(denied.value.denial_reason.empty());

  const auto unknown_tenant = client.Serve(ServeReq("mallory"));
  EXPECT_EQ(unknown_tenant.status, ReplyStatus::kError);
  EXPECT_EQ(unknown_tenant.error_code, wire::ErrorCode::kNotFound);

  const auto unknown_dataset = client.Serve(ServeReq("alice", 0.3, "imdb"));
  EXPECT_EQ(unknown_dataset.status, ReplyStatus::kError);
  EXPECT_EQ(unknown_dataset.error_code, wire::ErrorCode::kNotFound);

  const auto bad_budget = client.Serve(ServeReq("alice", -1.0));
  EXPECT_EQ(bad_budget.status, ReplyStatus::kError);
  EXPECT_EQ(bad_budget.error_code, wire::ErrorCode::kBadRequest);

  // The connection survives every typed refusal above.
  const auto ok = client.Serve(ServeReq("alice"));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value.granted);
}

// ---------- overload shedding (deterministic via the queue pause seam) ----

TEST(NetServerTest, FullQueueShedsWithTypedOverloaded) {
  auto svc = MakeService();
  ServerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  Server server(*svc, config);
  server.queue().Pause();

  const int raw = RawConnect(server.port());
  std::string pipelined = Magic();
  for (int i = 0; i < 5; ++i) {
    pipelined += wire::Frame(wire::Encode(ServeReq("alice")));
  }
  RawSend(raw, pipelined);

  // 3 of 5 requests exceed the paused queue's capacity; their Overloaded
  // responses arrive before any serve work happens.
  std::string buffer;
  int overloaded = 0;
  for (int i = 0; i < 3; ++i) {
    const auto payload = RawRecvFrame(raw, buffer);
    ASSERT_TRUE(payload.has_value());
    ASSERT_EQ(wire::PeekKind(*payload), wire::MsgKind::kOverloaded);
    EXPECT_NE(wire::DecodeOverloaded(*payload).reason.find("queue"),
              std::string::npos);
    ++overloaded;
  }

  // Stats stay answerable while the queue is saturated (inline on the
  // reader thread).
  RawSend(raw, wire::Frame(wire::EncodeStatsRequest()));
  const auto stats_payload = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(stats_payload.has_value());
  const wire::StatsResponse mid = wire::DecodeStatsResponse(*stats_payload);
  EXPECT_EQ(mid.queue_depth, 2u);
  EXPECT_EQ(mid.shed_queue_full, 3u);

  server.queue().Resume();
  for (int i = 0; i < 2; ++i) {
    const auto payload = RawRecvFrame(raw, buffer);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(wire::PeekKind(*payload), wire::MsgKind::kServeResponse);
    EXPECT_TRUE(wire::DecodeServeResponse(*payload).granted);
  }
  EXPECT_EQ(overloaded, 3);
  EXPECT_EQ(server.GetStats().shed_queue_full, 3u);
  ::close(raw);
}

TEST(NetServerTest, TenantInFlightCapShedsIndependentlyOfQueue) {
  auto svc = MakeService();
  ServerConfig config;
  config.queue_capacity = 16;
  Server server(*svc, config);
  server.queue().Pause();

  const int raw = RawConnect(server.port());
  RawSend(raw, Magic() + wire::Frame(wire::Encode(ServeReq("capped"))) +
                   wire::Frame(wire::Encode(ServeReq("capped"))));

  // max_in_flight=1: the second request is shed even though the queue has
  // plenty of room.
  std::string buffer;
  const auto shed = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(shed.has_value());
  ASSERT_EQ(wire::PeekKind(*shed), wire::MsgKind::kOverloaded);
  EXPECT_NE(wire::DecodeOverloaded(*shed).reason.find("in-flight"),
            std::string::npos);

  server.queue().Resume();
  const auto served = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(wire::PeekKind(*served), wire::MsgKind::kServeResponse);

  const wire::StatsResponse stats = server.GetStats();
  EXPECT_EQ(stats.shed_tenant_inflight, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);

  // The cap frees up once the request completes — but the slot is released
  // AFTER the response is sent, so a client pipelining right behind a reply
  // can still be shed.  That is the wire contract ("retry later"): retry.
  std::optional<std::string> again;
  for (int attempt = 0; attempt < 200; ++attempt) {
    RawSend(raw, wire::Frame(wire::Encode(ServeReq("capped"))));
    again = RawRecvFrame(raw, buffer);
    ASSERT_TRUE(again.has_value());
    if (wire::PeekKind(*again) != wire::MsgKind::kOverloaded) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(wire::PeekKind(*again), wire::MsgKind::kServeResponse);
  ::close(raw);
}

// ---------- hostile input over the socket ----------

TEST(NetServerHostileTest, NonProtocolMagicClosesWithoutResponse) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  RawSend(raw, "GET / HTTP/1.1\r\n\r\n");
  std::string buffer;
  EXPECT_FALSE(RawRecvFrame(raw, buffer).has_value());  // closed, no frame
  ::close(raw);
  EXPECT_GE(server.GetStats().protocol_errors, 1u);
}

TEST(NetServerHostileTest, CorruptCrcGetsTypedErrorThenClose) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  std::string framed = wire::Frame(wire::Encode(ServeReq("alice")));
  framed.back() ^= 0x01;
  RawSend(raw, Magic() + framed);
  std::string buffer;
  const auto payload = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(payload.has_value());
  ASSERT_EQ(wire::PeekKind(*payload), wire::MsgKind::kError);
  EXPECT_EQ(wire::DecodeError(*payload).code, wire::ErrorCode::kBadRequest);
  EXPECT_FALSE(RawRecvFrame(raw, buffer).has_value());  // then close
  ::close(raw);
}

TEST(NetServerHostileTest, OversizedDeclaredLengthRejectedImmediately) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  std::string header(wire::kFrameHeaderSize, '\0');
  const std::uint32_t huge = wire::kMaxPayload + 1;
  std::memcpy(header.data(), &huge, sizeof(huge));
  RawSend(raw, Magic() + header);
  std::string buffer;
  const auto payload = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(wire::PeekKind(*payload), wire::MsgKind::kError);
  EXPECT_FALSE(RawRecvFrame(raw, buffer).has_value());
  ::close(raw);
}

TEST(NetServerHostileTest, UnknownKindInValidFrameKeepsConnection) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  RawSend(raw, Magic() + wire::Frame(std::string(1, '\x63')));
  std::string buffer;
  const auto err = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(wire::PeekKind(*err), wire::MsgKind::kError);

  // Message-level violation: the stream is still framed, so the connection
  // survives and a valid request on it is served.
  RawSend(raw, wire::Frame(wire::Encode(ServeReq("alice"))));
  const auto ok = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(wire::PeekKind(*ok), wire::MsgKind::kServeResponse);
  ::close(raw);
}

TEST(NetServerHostileTest, ResponseKindFromClientGetsTypedError) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  RawSend(raw, Magic() +
                   wire::Frame(wire::Encode(wire::OverloadedResponse{"ha"})));
  std::string buffer;
  const auto err = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(err.has_value());
  ASSERT_EQ(wire::PeekKind(*err), wire::MsgKind::kError);
  EXPECT_EQ(wire::DecodeError(*err).code, wire::ErrorCode::kBadRequest);
  ::close(raw);
}

TEST(NetServerHostileTest, TruncatedBodyInValidFrameGetsTypedError) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const int raw = RawConnect(server.port());
  std::string payload = wire::Encode(ServeReq("alice"));
  payload.resize(payload.size() - 4);  // CRC-valid frame, truncated body
  RawSend(raw, Magic() + wire::Frame(payload));
  std::string buffer;
  const auto err = RawRecvFrame(raw, buffer);
  ASSERT_TRUE(err.has_value());
  ASSERT_EQ(wire::PeekKind(*err), wire::MsgKind::kError);
  EXPECT_EQ(wire::DecodeError(*err).code, wire::ErrorCode::kBadRequest);
  ::close(raw);
}

TEST(NetServerHostileTest, SlowLorisConnectionIsClosedAfterReadTimeout) {
  auto svc = MakeService();
  ServerConfig config;
  config.read_timeout_ms = 150;
  Server server(*svc, config);
  const int raw = RawConnect(server.port());
  // Magic plus half a frame header, then silence.
  RawSend(raw, Magic() + std::string(4, '\x01'));
  const auto start = std::chrono::steady_clock::now();
  std::string buffer;
  EXPECT_FALSE(RawRecvFrame(raw, buffer).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_GE(server.GetStats().protocol_errors, 1u);
  ::close(raw);
}

TEST(NetServerHostileTest, IdleConnectionBetweenRequestsIsNotOnTheClock) {
  auto svc = MakeService();
  ServerConfig config;
  config.read_timeout_ms = 100;
  Server server(*svc, config);
  Client client(server.port());
  ASSERT_TRUE(client.Serve(ServeReq("alice")).ok());
  // Much longer than the read timeout; only MID-message peers are timed.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(client.Serve(ServeReq("alice")).ok());
}

// ---------- shutdown drain ----------

TEST(NetServerTest, StopDrainsAdmittedJobsAndFlushesResponses) {
  auto svc = MakeService();
  ServerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  Server server(*svc, config);
  server.queue().Pause();

  const int raw = RawConnect(server.port());
  RawSend(raw, Magic() + wire::Frame(wire::Encode(ServeReq("alice"))) +
                   wire::Frame(wire::Encode(ServeReq("bob"))));
  while (server.GetStats().requests_enqueued < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Stop() with the queue still paused: the drain must run both jobs and
  // flush both responses before the fd closes.
  std::thread stopper([&server] { server.Stop(); });
  std::string buffer;
  std::vector<std::optional<std::string>> payloads;
  payloads.reserve(2);
  for (int i = 0; i < 2; ++i) {
    payloads.push_back(RawRecvFrame(raw, buffer));
  }
  const bool closed_after = !RawRecvFrame(raw, buffer).has_value();
  stopper.join();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(payloads[i].has_value()) << "response " << i
                                         << " lost in Stop()";
    EXPECT_EQ(wire::PeekKind(*payloads[i]), wire::MsgKind::kServeResponse);
    EXPECT_TRUE(wire::DecodeServeResponse(*payloads[i]).granted);
  }
  EXPECT_TRUE(closed_after);
  EXPECT_EQ(server.requests_completed(), 2u);
  ::close(raw);
}

TEST(NetServerTest, StopIsIdempotentAndNewConnectionsAreRefused) {
  auto svc = MakeService();
  auto server = std::make_unique<Server>(*svc, ServerConfig{});
  const std::uint16_t port = server->port();
  {
    Client client(port);
    ASSERT_TRUE(client.Serve(ServeReq("alice")).ok());
  }
  server->Stop();
  server->Stop();
  EXPECT_THROW(Client{port}, gdp::common::IoError);
  server.reset();  // the destructor's Stop() is also a no-op
}

// Every charge a draining server admitted is in the WAL; recovery restores
// the tenants without a sequence gap (the serving half of the durability
// contract).
TEST(NetServerTest, DrainKeepsWalConsistent) {
  const std::string wal_path = ::testing::TempDir() + "/net_server_drain.wal";
  ::unlink(wal_path.c_str());
  std::uint64_t appends = 0;
  {
    auto svc = DisclosureService::Open(Configure, wal_path, 4);
    Server server(*svc, ServerConfig{});
    Client client(server.port());
    for (int i = 0; i < 3; ++i) {
      const auto reply = client.Serve(ServeReq("alice"));
      ASSERT_TRUE(reply.ok());
      EXPECT_TRUE(reply.value.granted);
    }
    server.Stop();
    appends = svc->durability_stats().wal_appends;
    EXPECT_GE(appends, 3u);
  }
  auto recovered = DisclosureService::Open(Configure, wal_path, 4);
  const gdp::serve::RecoveryReport& report = recovered->recovery();
  EXPECT_EQ(report.records_replayed, appends);
  EXPECT_EQ(report.tenants_restored, 1u);
  EXPECT_FALSE(report.sequence_gap);
  ::unlink(wal_path.c_str());
}

// ---------- concurrency (the TSan target) ----------

TEST(NetServerConcurrentTest, ManyClientsManyWorkersNoLostRequests) {
  auto svc = std::make_unique<DisclosureService>(4);
  svc->catalog().Register(
      "dblp", gdp::serve::Dataset{TestGraph(), SmallSpec(), 7, {}, {}});
  constexpr int kThreads = 8;
  constexpr int kRequestsEach = 5;
  for (int t = 0; t < kThreads; ++t) {
    svc->broker().Register("tenant" + std::to_string(t),
                           TenantProfile{100.0, 0.2, t % 5});
  }
  ServerConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  Server server(*svc, config);

  std::vector<std::thread> threads;
  std::vector<int> granted(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &granted, t] {
      Client client(server.port());
      const std::string tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < kRequestsEach; ++i) {
        const auto reply = client.Serve(ServeReq(tenant, 0.25));
        ASSERT_TRUE(reply.ok()) << reply.message;
        ASSERT_TRUE(reply.value.granted) << reply.value.denial_reason;
        granted[t] += 1;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(granted[t], kRequestsEach);
  }
  // Counters increment AFTER the response hits the socket, so joined clients
  // can race ahead of the last worker's bookkeeping — poll them level.
  constexpr auto kTotal = static_cast<std::uint64_t>(kThreads * kRequestsEach);
  wire::StatsResponse stats = server.GetStats();
  for (int spin = 0; spin < 2000 && (stats.requests_completed < kTotal ||
                                     stats.requests_enqueued < kTotal);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server.GetStats();
  }
  EXPECT_EQ(stats.requests_completed, kTotal);
  EXPECT_EQ(stats.requests_enqueued, stats.requests_completed);
  EXPECT_EQ(stats.shed_queue_full, 0u);
  EXPECT_EQ(stats.shed_tenant_inflight, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.connections_accepted,
            static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace gdp::net
