#include "dp/snapping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;

TEST(SnappingMechanismTest, RejectsBadBound) {
  EXPECT_THROW(SnappingMechanism(Epsilon(1.0), L1Sensitivity(1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(SnappingMechanism(Epsilon(1.0), L1Sensitivity(1.0), -5.0),
               std::invalid_argument);
}

TEST(SnappingMechanismTest, LambdaIsPowerOfTwoAtLeastScale) {
  const SnappingMechanism m(Epsilon(0.3), L1Sensitivity(1.0), 1000.0);
  EXPECT_GE(m.lambda(), m.scale());
  EXPECT_LT(m.lambda(), 2.0 * m.scale());
  const double log2_lambda = std::log2(m.lambda());
  EXPECT_DOUBLE_EQ(log2_lambda, std::round(log2_lambda));
}

TEST(SnappingMechanismTest, OutputsClampedToBound) {
  const double bound = 50.0;
  const SnappingMechanism m(Epsilon(0.1), L1Sensitivity(10.0), bound);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double out = m.AddNoise(45.0, rng);
    EXPECT_GE(out, -bound);
    EXPECT_LE(out, bound);
  }
}

TEST(SnappingMechanismTest, OutputsLieOnLambdaGrid) {
  const SnappingMechanism m(Epsilon(1.0), L1Sensitivity(1.0), 1e6);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double out = m.AddNoise(123.456, rng);
    const double cells = out / m.lambda();
    EXPECT_NEAR(cells, std::nearbyint(cells), 1e-9);
  }
}

TEST(SnappingMechanismTest, NoiseCentredOnTruth) {
  const SnappingMechanism m(Epsilon(1.0), L1Sensitivity(1.0), 1e9);
  Rng rng(7);
  gdp::common::RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.Add(m.AddNoise(1000.0, rng));
  }
  EXPECT_NEAR(s.mean(), 1000.0, 0.1);
  // Stddev close to Laplace's sqrt(2)*b plus snapping quantisation.
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 0.3);
}

TEST(SnappingMechanismTest, ClampsInputBeforeNoising) {
  const double bound = 10.0;
  const SnappingMechanism m(Epsilon(5.0), L1Sensitivity(1.0), bound);
  Rng rng(9);
  // A wildly out-of-range answer cannot push the output past the bound.
  gdp::common::RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(m.AddNoise(1e12, rng));
  }
  EXPECT_LE(s.max(), bound);
  EXPECT_GT(s.mean(), bound - 3.0);  // centred near the clamp
}

TEST(SnappingMechanismTest, EffectiveEpsilonBarelyAboveNominal) {
  const SnappingMechanism m(Epsilon(1.0), L1Sensitivity(1.0), 1e6);
  EXPECT_GT(m.EffectiveEpsilon(), 1.0);
  EXPECT_LT(m.EffectiveEpsilon(), 1.01);
}

}  // namespace
}  // namespace gdp::dp
