// The multi-tenant serving layer: catalog, registry (LRU + stats), broker,
// and the end-to-end DisclosureService contract — compile once per dataset,
// per-tenant ledger isolation, privilege-tier level views, and bit-identical
// determinism against a fresh session.  Runs under TSan in CI.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/access_policy.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "hier/partition.hpp"

namespace gdp::serve {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 500;
  p.num_edges = 2500;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  return spec;
}

Dataset SmallDataset(std::uint64_t graph_seed = 3,
                     std::uint64_t compile_seed = 7) {
  return Dataset{TestGraph(graph_seed), SmallSpec(), compile_seed, {}, {}};
}

// ---------- DatasetCatalog ----------

TEST(DatasetCatalogTest, RegisterGetContains) {
  DatasetCatalog catalog;
  catalog.Register("dblp", SmallDataset());
  EXPECT_TRUE(catalog.Contains("dblp"));
  EXPECT_FALSE(catalog.Contains("imdb"));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.Get("dblp").compile_seed, 7u);
  EXPECT_THROW((void)catalog.Get("imdb"), gdp::common::NotFoundError);
  EXPECT_THROW(catalog.Register("dblp", SmallDataset()),
               gdp::common::StateError);
}

// ---------- TenantBroker ----------

TEST(TenantBrokerTest, RegisterValidatesAndLooksUp) {
  TenantBroker broker;
  broker.Register("alice", TenantProfile{2.0, 1e-3, 3});
  EXPECT_TRUE(broker.Contains("alice"));
  EXPECT_EQ(broker.Profile("alice").privilege, 3);
  EXPECT_DOUBLE_EQ(broker.Profile("alice").epsilon_cap, 2.0);
  EXPECT_THROW((void)broker.Profile("bob"), gdp::common::NotFoundError);
  EXPECT_THROW(broker.Register("alice", TenantProfile{}),
               gdp::common::StateError);
  EXPECT_THROW(broker.Register("bad", TenantProfile{0.0, 0.1, 0}),
               std::invalid_argument);
  EXPECT_THROW(broker.Register("bad", TenantProfile{1.0, 1.0, 0}),
               std::invalid_argument);
  EXPECT_THROW(broker.Register("bad", TenantProfile{1.0, 0.1, -1}),
               std::invalid_argument);
}

// ---------- SessionRegistry ----------

TEST(SessionRegistryTest, HitServesCachedArtifactWithoutRecompiling) {
  const BipartiteGraph g = TestGraph();
  SessionRegistry registry(4);
  const std::uint64_t scans_before =
      gdp::hier::Partition::DegreeSumScanCount();
  const auto first = registry.GetOrCompile("ds", g, SmallSpec(), 7);
  const auto second = registry.GetOrCompile("ds", g, SmallSpec(), 7);
  EXPECT_EQ(first.get(), second.get()) << "a hit must be the SAME artifact";
  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 1u);
  EXPECT_EQ(registry.stats().hits, 1u);
  EXPECT_EQ(registry.stats().misses, 1u);
  EXPECT_EQ(registry.stats().evictions, 0u);
}

TEST(SessionRegistryTest, FingerprintSeparatesArtifactIdentity) {
  const gdp::core::SessionSpec base = SmallSpec();
  gdp::core::SessionSpec other = base;
  other.hierarchy.depth = 6;
  EXPECT_NE(SessionRegistry::Fingerprint(base, 7),
            SessionRegistry::Fingerprint(other, 7));
  EXPECT_NE(SessionRegistry::Fingerprint(base, 7),
            SessionRegistry::Fingerprint(base, 8));
  // Caps are per-tenant grants, not artifact identity.
  gdp::core::SessionSpec capped = base;
  capped.epsilon_cap = 42.0;
  EXPECT_EQ(SessionRegistry::Fingerprint(base, 7),
            SessionRegistry::Fingerprint(capped, 7));
  // Pool SIZE never changes the bits; pool presence does.
  gdp::core::SessionSpec two = base;
  two.exec.num_threads = 2;
  gdp::core::SessionSpec eight = base;
  eight.exec.num_threads = 8;
  EXPECT_EQ(SessionRegistry::Fingerprint(two, 7),
            SessionRegistry::Fingerprint(eight, 7));
  EXPECT_NE(SessionRegistry::Fingerprint(base, 7),
            SessionRegistry::Fingerprint(two, 7));
}

TEST(SessionRegistryTest, LruEvictionOrderAndRecompileOnMiss) {
  const BipartiteGraph ga = TestGraph(3);
  const BipartiteGraph gb = TestGraph(4);
  const BipartiteGraph gc = TestGraph(5);
  SessionRegistry registry(2);
  (void)registry.GetOrCompile("A", ga, SmallSpec(), 7);
  (void)registry.GetOrCompile("B", gb, SmallSpec(), 7);
  // Touch A so B becomes the LRU entry.
  (void)registry.GetOrCompile("A", ga, SmallSpec(), 7);
  // C evicts B (the least recently used), NOT A.
  (void)registry.GetOrCompile("C", gc, SmallSpec(), 7);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.stats().evictions, 1u);
  const auto keys = registry.KeysMostRecentFirst();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].substr(0, 2), "C|");
  EXPECT_EQ(keys[1].substr(0, 2), "A|");

  // B was evicted: the next request recompiles (a fresh scan), and the
  // recompiled artifact is bit-equivalent because the seed is in the key.
  const std::uint64_t scans_before =
      gdp::hier::Partition::DegreeSumScanCount();
  const auto recompiled = registry.GetOrCompile("B", gb, SmallSpec(), 7);
  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 1u);
  EXPECT_EQ(registry.stats().misses, 4u);     // A, B, C cold + B again
  EXPECT_EQ(registry.stats().evictions, 2u);  // C evicted B; B's return evicted A
  Rng r1(11);
  Rng r2(11);
  gdp::common::Rng fresh_rng(7);
  const auto fresh =
      gdp::core::CompiledDisclosure::Compile(gb, SmallSpec(), fresh_rng);
  EXPECT_EQ(recompiled->Release(SmallSpec().budget, r1).level(2).noisy_total,
            fresh->Release(SmallSpec().budget, r2).level(2).noisy_total);
}

TEST(SessionRegistryTest, EvictionNeverInvalidatesLiveTenants) {
  const BipartiteGraph ga = TestGraph(3);
  const BipartiteGraph gb = TestGraph(4);
  SessionRegistry registry(1);
  const auto artifact_a = registry.GetOrCompile("A", ga, SmallSpec(), 7);
  gdp::core::DisclosureSession tenant =
      gdp::core::DisclosureSession::Attach(artifact_a);
  // B evicts A from the registry; the tenant's shared_ptr keeps it alive.
  (void)registry.GetOrCompile("B", gb, SmallSpec(), 7);
  EXPECT_EQ(registry.stats().evictions, 1u);
  Rng rng(9);
  EXPECT_EQ(tenant.Release(rng).num_levels(), 6);
}

TEST(SessionRegistryTest, ReboundDatasetNameMissesOnDifferentGraph) {
  // A dataset name re-pointed at a different graph must MISS (the key folds
  // in the graph shape), not silently serve the old graph's statistics.
  const BipartiteGraph ga = TestGraph(3);
  Rng gen(4);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 500;
  p.num_edges = 2600;  // different shape under the same name
  const BipartiteGraph gb = GenerateDblpLike(p, gen);
  SessionRegistry registry(4);
  (void)registry.GetOrCompile("ds", ga, SmallSpec(), 7);
  (void)registry.GetOrCompile("ds", gb, SmallSpec(), 7);
  EXPECT_EQ(registry.stats().misses, 2u);
  EXPECT_EQ(registry.stats().hits, 0u);
}

TEST(SessionRegistryTest, RejectsZeroCapacity) {
  EXPECT_THROW(SessionRegistry(0), std::invalid_argument);
}

// ---------- DisclosureService ----------

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : service_(4) {
    service_.catalog().Register("dblp", SmallDataset());
    // Depth-5 hierarchy => 6 levels => uniform policy with 6 tiers.
    service_.broker().Register("low", TenantProfile{50.0, 0.4, 0});
    service_.broker().Register("high", TenantProfile{50.0, 0.4, 5});
  }
  DisclosureService service_;
  gdp::core::BudgetSpec budget_ = SmallSpec().budget;
};

TEST_F(ServiceTest, ServesEntitledLevelViewPerTier) {
  Rng rng(21);
  const ServeResult low = service_.Serve("low", "dblp", budget_, rng);
  const ServeResult high = service_.Serve("high", "dblp", budget_, rng);
  ASSERT_TRUE(low.granted);
  ASSERT_TRUE(high.granted);
  // Lowest tier gets the coarsest level (5), highest tier level 0.
  EXPECT_EQ(low.level, 5);
  EXPECT_EQ(low.view.level, 5);
  EXPECT_EQ(high.level, 0);
  EXPECT_EQ(high.view.level, 0);
  // One compile serves both tenants.
  EXPECT_EQ(service_.registry().stats().misses, 1u);
  EXPECT_EQ(service_.registry().stats().hits, 1u);
}

TEST_F(ServiceTest, TwoTenantsOneScanTotal) {
  const std::uint64_t scans_before =
      gdp::hier::Partition::DegreeSumScanCount();
  Rng rng(21);
  ASSERT_TRUE(service_.Serve("low", "dblp", budget_, rng).granted);
  ASSERT_TRUE(service_.Serve("high", "dblp", budget_, rng).granted);
  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 1u)
      << "serving two tenants must cost exactly one node scan";
}

TEST_F(ServiceTest, ServeViaRegistryBitIdenticalToFreshSession) {
  // The end-to-end determinism pin: tenant T served through catalog +
  // registry + broker + policy equals a hand-built fresh session at the
  // same seeds.
  Rng rng(33);
  const ServeResult via_service = service_.Serve("high", "dblp", budget_, rng);
  ASSERT_TRUE(via_service.granted);

  const BipartiteGraph g = TestGraph();  // same graph seed as SmallDataset
  Rng open_rng(7);                       // the dataset's compile seed
  gdp::core::DisclosureSession fresh =
      gdp::core::DisclosureSession::Open(g, SmallSpec(), open_rng);
  Rng fresh_rng(33);
  const gdp::core::MultiLevelRelease release = fresh.Release(budget_, fresh_rng);
  const gdp::core::AccessPolicy policy =
      gdp::core::AccessPolicy::Uniform(fresh.hierarchy().num_levels());
  const gdp::core::LevelRelease& expected = policy.ViewFor(release, 5);
  EXPECT_EQ(via_service.view.level, expected.level);
  EXPECT_EQ(via_service.view.noisy_total, expected.noisy_total);
  EXPECT_EQ(via_service.view.noisy_group_counts, expected.noisy_group_counts);
}

TEST_F(ServiceTest, TenantIsolationExhaustionNeverLeaks) {
  // "small" can afford phase 1 + exactly one release; "low" is untouched by
  // small's exhaustion.
  const double phase1 = budget_.phase1_epsilon();  // ≈ actual spend
  service_.broker().Register(
      "small",
      TenantProfile{phase1 + budget_.phase2_epsilon() + 1e-9, 0.4, 1});
  Rng rng(5);
  ASSERT_TRUE(service_.Serve("small", "dblp", budget_, rng).granted);
  const ServeResult denied = service_.Serve("small", "dblp", budget_, rng);
  EXPECT_FALSE(denied.granted);
  EXPECT_NE(denied.denial_reason.find("exhausted"), std::string::npos);

  // The other tenant's ledger never saw small's requests.
  const ServeResult low = service_.Serve("low", "dblp", budget_, rng);
  ASSERT_TRUE(low.granted);
  const auto low_ledger = service_.Ledger("low", "dblp");
  EXPECT_EQ(low_ledger.charges().size(), 2u);  // phase1 + one release
  const auto small_ledger = service_.Ledger("small", "dblp");
  EXPECT_EQ(small_ledger.charges().size(), 2u)
      << "the denied request must not appear on small's ledger";
}

TEST_F(ServiceTest, DenialLeavesRngUntouched) {
  service_.broker().Register(
      "micro", TenantProfile{budget_.phase1_epsilon() +
                                 budget_.phase2_epsilon() + 1e-9,
                             0.4, 0});
  Rng rng(5);
  ASSERT_TRUE(service_.Serve("micro", "dblp", budget_, rng).granted);
  const Rng snapshot = rng;
  EXPECT_FALSE(service_.Serve("micro", "dblp", budget_, rng).granted);
  Rng expected = snapshot;
  EXPECT_EQ(rng(), expected());
}

TEST_F(ServiceTest, UnknownNamesThrowNotFound) {
  Rng rng(5);
  EXPECT_THROW((void)service_.Serve("ghost", "dblp", budget_, rng),
               gdp::common::NotFoundError);
  EXPECT_THROW((void)service_.Serve("low", "imdb", budget_, rng),
               gdp::common::NotFoundError);
  EXPECT_THROW((void)service_.Ledger("low", "dblp"),
               gdp::common::NotFoundError);
}

TEST_F(ServiceTest, TierBeyondPolicyThrowsAccessPolicyError) {
  // Tier 9 in a 6-level uniform policy: a configuration error, thrown
  // before any charge.
  service_.broker().Register("vip", TenantProfile{50.0, 0.4, 9});
  Rng rng(5);
  EXPECT_THROW((void)service_.Serve("vip", "dblp", budget_, rng),
               gdp::common::AccessPolicyError);
}

TEST_F(ServiceTest, AccessLevelBeyondHierarchyCostsNothing) {
  // An explicit mapping pointing past the compiled hierarchy is a
  // configuration error caught BEFORE any charge or draw: no session is
  // attached, no budget spent, rng untouched.
  Dataset ds = SmallDataset(8, 13);
  ds.access_levels = {12};  // depth-5 hierarchy has levels 0..5
  service_.catalog().Register("badmap", std::move(ds));
  Rng rng(5);
  const Rng snapshot = rng;
  EXPECT_THROW((void)service_.Serve("low", "badmap", budget_, rng),
               gdp::common::AccessPolicyError);
  Rng expected = snapshot;
  EXPECT_EQ(rng(), expected());
  EXPECT_THROW((void)service_.Ledger("low", "badmap"),
               gdp::common::NotFoundError)
      << "a failed policy mapping must not leave a charged session behind";
}

TEST_F(ServiceTest, DeltaCapDenialNamesTheDeltaCap) {
  // Ample epsilon, tiny delta: the denial must blame the delta cap, not
  // print a self-contradictory epsilon message.
  service_.broker().Register("delta_poor", TenantProfile{50.0, 1.5e-5, 0});
  Rng rng(5);
  ASSERT_TRUE(service_.Serve("delta_poor", "dblp", budget_, rng).granted);
  const ServeResult denied = service_.Serve("delta_poor", "dblp", budget_, rng);
  ASSERT_FALSE(denied.granted);
  EXPECT_NE(denied.denial_reason.find("delta cap"), std::string::npos)
      << denied.denial_reason;
}

TEST_F(ServiceTest, ExplicitAccessLevelsOverrideUniform) {
  Dataset ds = SmallDataset(6, 11);
  ds.access_levels = {4, 2, 0};  // three tiers only
  service_.catalog().Register("mapped", std::move(ds));
  service_.broker().Register("mid", TenantProfile{50.0, 0.4, 1});
  Rng rng(5);
  const ServeResult result = service_.Serve("mid", "mapped", budget_, rng);
  ASSERT_TRUE(result.granted);
  EXPECT_EQ(result.level, 2);
  EXPECT_EQ(result.view.level, 2);
}

TEST_F(ServiceTest, GrantBelowPhase1IsDeniedNotThrown) {
  service_.broker().Register("dust",
                             TenantProfile{budget_.phase1_epsilon() / 4.0,
                                           0.4, 0});
  Rng rng(5);
  const Rng snapshot = rng;
  const ServeResult denied = service_.Serve("dust", "dblp", budget_, rng);
  EXPECT_FALSE(denied.granted);
  EXPECT_FALSE(denied.denial_reason.empty());
  // Nothing was charged: the result reports the grant fully unspent, not
  // the all-zeros of an exhausted tenant.
  EXPECT_DOUBLE_EQ(denied.epsilon_spent, 0.0);
  EXPECT_DOUBLE_EQ(denied.epsilon_remaining, budget_.phase1_epsilon() / 4.0);
  Rng expected = snapshot;
  EXPECT_EQ(rng(), expected());
  // Nothing was cached for the tenant: no ledger exists.
  EXPECT_THROW((void)service_.Ledger("dust", "dblp"),
               gdp::common::NotFoundError);
}

TEST_F(ServiceTest, AttachedTenantSurvivesEvictionWithoutRecompile) {
  // Once a tenant is attached, its session pins the artifact: evicting the
  // registry entry must not force a recompile (or ANY graph work) for that
  // tenant's later requests.
  Rng rng(5);
  ASSERT_TRUE(service_.Serve("low", "dblp", budget_, rng).granted);
  // Flood the capacity-4 registry so dblp's entry is evicted.
  for (int i = 0; i < 4; ++i) {
    const std::string name = "filler" + std::to_string(i);
    service_.catalog().Register(
        name, SmallDataset(20 + static_cast<std::uint64_t>(i),
                           30 + static_cast<std::uint64_t>(i)));
    const Dataset& ds = service_.catalog().Get(name);
    (void)service_.registry().GetOrCompile(name, ds.graph, ds.publication,
                                           ds.compile_seed);
  }
  ASSERT_GE(service_.registry().stats().evictions, 1u);
  const std::uint64_t scans_before =
      gdp::hier::Partition::DegreeSumScanCount();
  ASSERT_TRUE(service_.Serve("low", "dblp", budget_, rng).granted);
  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 0u)
      << "an attached tenant must be served from its pinned artifact";
}

TEST_F(ServiceTest, ConcurrentTenantsServeFromOneArtifact) {
  // Distinct tenants on distinct threads share the compiled artifact; the
  // per-entry locks keep each tenant's ledger consistent.  TSan-covered.
  for (int t = 0; t < 4; ++t) {
    service_.broker().Register("t" + std::to_string(t),
                               TenantProfile{50.0, 0.4, t});
  }
  // Warm the registry so threads race on hits, not the compile.
  Rng warm_rng(1);
  ASSERT_TRUE(service_.Serve("t0", "dblp", budget_, warm_rng).granted);
  std::vector<std::thread> threads;
  std::vector<int> served(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(400 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 3; ++i) {
        const ServeResult r = service_.Serve("t" + std::to_string(t), "dblp",
                                             budget_, rng);
        served[static_cast<std::size_t>(t)] += r.granted ? 1 : 0;
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(served[static_cast<std::size_t>(t)], 3);
    const auto ledger = service_.Ledger("t" + std::to_string(t), "dblp");
    // phase1 + 3 releases (+1 for t0's warm-up).
    EXPECT_EQ(ledger.charges().size(), t == 0 ? 5u : 4u);
  }
  EXPECT_EQ(service_.registry().stats().misses, 1u);
}

// ---------- per-tenant accounting policies ----------

TEST_F(ServiceTest, RdpTenantGetsStrictlyMoreReleasesThanSequentialAtSameCaps) {
  // Same grant, same requests, same dataset — only the accounting policy
  // differs.  The RDP tenant composes its Gaussian releases on the Rényi
  // curve and must outlast the sequential tenant.
  TenantProfile seq_profile{5.0, 1e-2, 0};
  TenantProfile rdp_profile{5.0, 1e-2, 0};
  rdp_profile.accounting = gdp::dp::AccountingPolicy::kRdp;
  service_.broker().Register("seq_tenant", seq_profile);
  service_.broker().Register("rdp_tenant", rdp_profile);

  auto grants_until_denied = [this](const std::string& tenant) {
    Rng rng(77);
    int granted = 0;
    while (granted < 10000 &&
           service_.Serve(tenant, "dblp", budget_, rng).granted) {
      ++granted;
    }
    return granted;
  };
  const int sequential = grants_until_denied("seq_tenant");
  const int rdp = grants_until_denied("rdp_tenant");
  EXPECT_GT(sequential, 0);
  EXPECT_GT(rdp, sequential)
      << "an RDP tenant must demonstrably get more releases from the same "
       "grant";
  EXPECT_LT(rdp, 10000) << "the RDP grant must still exhaust";
}

TEST_F(ServiceTest, ServeReportsNaiveAndAccountedSpend) {
  TenantProfile rdp_profile{50.0, 1e-2, 0};
  rdp_profile.accounting = gdp::dp::AccountingPolicy::kRdp;
  service_.broker().Register("rdp_audit", rdp_profile);
  Rng rng(81);
  ServeResult result;
  for (int i = 0; i < 8; ++i) {
    result = service_.Serve("rdp_audit", "dblp", budget_, rng);
    ASSERT_TRUE(result.granted);
  }
  EXPECT_EQ(result.accounting, gdp::dp::AccountingPolicy::kRdp);
  EXPECT_LT(result.accounted_epsilon, result.epsilon_spent)
      << "after 8 Gaussian releases the tightened cumulative must sit below "
       "the naive sum";
  EXPECT_GT(result.accounted_epsilon, 0.0);
  // The sequential tenant reports identical naive and accounted figures.
  const ServeResult seq = service_.Serve("low", "dblp", budget_, rng);
  ASSERT_TRUE(seq.granted);
  EXPECT_EQ(seq.accounting, gdp::dp::AccountingPolicy::kSequential);
  EXPECT_EQ(seq.accounted_epsilon, seq.epsilon_spent);

  // And the audit ledger shows both views.
  const auto ledger = service_.Ledger("rdp_audit", "dblp");
  const std::string report = ledger.AuditReport();
  EXPECT_NE(report.find("accounting=rdp"), std::string::npos);
  EXPECT_NE(report.find("rdp-accounted"), std::string::npos);
  // The tightened guarantee at the tenant's own δ beats the naive Σε.
  EXPECT_LT(ledger.AccountedGuarantee(1e-6).epsilon, ledger.epsilon_spent());
}

TEST_F(ServiceTest, BrokerRejectsNonSequentialPolicyWithoutDeltaHeadroom) {
  TenantProfile bad{5.0, 0.0, 0};
  bad.accounting = gdp::dp::AccountingPolicy::kRdp;
  EXPECT_THROW(service_.broker().Register("bad", bad), std::invalid_argument);
  bad.accounting = gdp::dp::AccountingPolicy::kAdvanced;
  EXPECT_THROW(service_.broker().Register("bad", bad), std::invalid_argument);
  bad.accounting = gdp::dp::AccountingPolicy::kSequential;
  EXPECT_NO_THROW(service_.broker().Register("bad", bad));
}

}  // namespace
}  // namespace gdp::serve
