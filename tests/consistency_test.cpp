#include "core/consistency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/group_dp_engine.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;
using gdp::hier::GroupHierarchy;

BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 600;
  p.num_edges = 4000;
  return GenerateDblpLike(p, rng);
}

GroupHierarchy TestHierarchy(const BipartiteGraph& g, int depth = 5) {
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = depth;
  const gdp::hier::Specializer spec(cfg);
  Rng rng(5);
  return spec.BuildHierarchy(g, rng).hierarchy;
}

MultiLevelRelease NoisyRelease(const BipartiteGraph& g, const GroupHierarchy& h,
                               std::uint64_t seed, double eps = 0.999) {
  ReleaseConfig cfg;
  cfg.epsilon_g = eps;
  cfg.include_group_counts = true;
  const GroupDpEngine engine(cfg);
  Rng rng(seed);
  return engine.ReleaseAll(g, h, rng);
}

TEST(ConsistencyTest, RawReleaseIsInconsistent) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const MultiLevelRelease raw = NoisyRelease(g, h, 7);
  EXPECT_FALSE(IsHierarchicallyConsistent(h, raw, 1e-3));
}

TEST(ConsistencyTest, EnforcedReleaseIsConsistent) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const MultiLevelRelease adjusted =
      EnforceHierarchicalConsistency(h, NoisyRelease(g, h, 7));
  EXPECT_TRUE(IsHierarchicallyConsistent(h, adjusted, 1e-6));
}

TEST(ConsistencyTest, TrueCountsAreAlreadyConsistent) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  MultiLevelRelease raw = NoisyRelease(g, h, 9);
  // Replace noisy by true counts: the invariant must hold exactly.
  std::vector<LevelRelease> levels = raw.levels();
  for (auto& lr : levels) {
    lr.noisy_group_counts = lr.true_group_counts;
  }
  const MultiLevelRelease truth(std::move(levels));
  EXPECT_TRUE(IsHierarchicallyConsistent(h, truth, 1e-9));
}

TEST(ConsistencyTest, ConsistencyIsIdempotent) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const MultiLevelRelease once =
      EnforceHierarchicalConsistency(h, NoisyRelease(g, h, 11));
  const MultiLevelRelease twice = EnforceHierarchicalConsistency(h, once);
  for (int lvl = 0; lvl < once.num_levels(); ++lvl) {
    const auto& a = once.level(lvl).noisy_group_counts;
    const auto& b = twice.level(lvl).noisy_group_counts;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], std::max(1.0, std::fabs(a[i])) * 1e-6);
    }
  }
}

TEST(ConsistencyTest, ReducesCoarseLevelError) {
  // GLS borrows strength from the fine levels, so coarse-level group counts
  // must improve on average.
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  double raw_err = 0.0;
  double adj_err = 0.0;
  constexpr int kTrials = 10;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    const MultiLevelRelease raw = NoisyRelease(g, h, 100 + t);
    const MultiLevelRelease adj = EnforceHierarchicalConsistency(h, raw);
    const int lvl = h.depth();  // coarsest
    raw_err += MeanAbsoluteError(raw.level(lvl).noisy_group_counts,
                                 raw.level(lvl).true_group_counts);
    adj_err += MeanAbsoluteError(adj.level(lvl).noisy_group_counts,
                                 adj.level(lvl).true_group_counts);
  }
  EXPECT_LT(adj_err, raw_err);
}

TEST(ConsistencyTest, ScalarTotalsAreLeftUntouched) {
  // The scalar total is a lower-variance observation than any group-count
  // sum (it was calibrated without the sqrt(2) vector factor), so the
  // post-processing must not overwrite it.
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  const MultiLevelRelease raw = NoisyRelease(g, h, 200);
  const MultiLevelRelease adj = EnforceHierarchicalConsistency(h, raw);
  for (int lvl = 0; lvl < raw.num_levels(); ++lvl) {
    EXPECT_DOUBLE_EQ(adj.level(lvl).noisy_total, raw.level(lvl).noisy_total);
  }
}

TEST(ConsistencyTest, RejectsReleaseWithoutGroupCounts) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  Rng rng(13);
  const MultiLevelRelease bare = engine.ReleaseAll(g, h, rng);
  EXPECT_THROW((void)EnforceHierarchicalConsistency(h, bare),
               std::invalid_argument);
  EXPECT_THROW((void)IsHierarchicallyConsistent(h, bare), std::invalid_argument);
}

TEST(ConsistencyTest, RejectsLevelCountMismatch) {
  const BipartiteGraph g = TestGraph();
  const GroupHierarchy h5 = TestHierarchy(g, 5);
  const GroupHierarchy h3 = TestHierarchy(g, 3);
  const MultiLevelRelease r5 = NoisyRelease(g, h5, 17);
  EXPECT_THROW((void)EnforceHierarchicalConsistency(h3, r5),
               std::invalid_argument);
}

}  // namespace
}  // namespace gdp::core
