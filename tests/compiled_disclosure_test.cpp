// The shared-artifact contract: one CompiledDisclosure serves many tenant
// handles, concurrently, with zero extra graph work and bit-identical
// output.  The concurrency tests here run under TSan in CI (ci.yml's
// thread-sanitize job), so a data race in the artifact's internally
// synchronized caches (MechanismCache, call_once index, shared ThreadPool)
// fails the build rather than corrupting a release.
#include "core/compiled_disclosure.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "hier/navigation.hpp"
#include "hier/partition.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 500;
  p.num_right = 700;
  p.num_edges = 3000;
  return GenerateDblpLike(p, rng);
}

SessionSpec SmallSpec() {
  SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  return spec;
}

void ExpectBitIdentical(const MultiLevelRelease& a, const MultiLevelRelease& b,
                        const std::string& context) {
  ASSERT_EQ(a.num_levels(), b.num_levels()) << context;
  for (int lvl = 0; lvl < a.num_levels(); ++lvl) {
    const LevelRelease& la = a.level(lvl);
    const LevelRelease& lb = b.level(lvl);
    EXPECT_EQ(la.sensitivity, lb.sensitivity) << context << " level " << lvl;
    EXPECT_EQ(la.noise_stddev, lb.noise_stddev) << context << " level " << lvl;
    EXPECT_EQ(la.noisy_total, lb.noisy_total) << context << " level " << lvl;
    EXPECT_EQ(la.noisy_group_counts, lb.noisy_group_counts)
        << context << " level " << lvl;
  }
}

// ---------- the acceptance pin: two tenants, ONE build, ONE scan ----------

TEST(CompiledDisclosureTest, TwoTenantsOneCompileOneScan) {
  const BipartiteGraph g = TestGraph();
  const std::uint64_t scans_before =
      gdp::hier::Partition::DegreeSumScanCount();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);

  DisclosureSession tenant_a = DisclosureSession::Attach(compiled);
  DisclosureSession tenant_b = DisclosureSession::Attach(compiled);
  Rng ra(11);
  Rng rb(13);
  const MultiLevelRelease rel_a = tenant_a.Release(ra);
  const MultiLevelRelease rel_b = tenant_b.Release(rb);
  EXPECT_EQ(rel_a.num_levels(), 6);
  EXPECT_EQ(rel_b.num_levels(), 6);

  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 1u)
      << "two tenants on one artifact must cost exactly one Phase-1 build "
         "and one GroupDegreeSums scan total";

  // Each tenant has its own ledger: one phase-1 charge + its own release.
  EXPECT_EQ(tenant_a.ledger().charges().size(), 2u);
  EXPECT_EQ(tenant_b.ledger().charges().size(), 2u);
  EXPECT_EQ(tenant_a.num_releases(), 1);
  EXPECT_EQ(tenant_b.num_releases(), 1);
}

// ---------- parity: attached handle == fresh session == one-shot ----------

TEST(CompiledDisclosureTest, AttachedTenantBitIdenticalToFreshSession) {
  const BipartiteGraph g = TestGraph();
  const SessionSpec spec = SmallSpec();

  Rng compile_rng(23);
  const auto compiled = CompiledDisclosure::Compile(g, spec, compile_rng);
  DisclosureSession tenant = DisclosureSession::Attach(compiled, 100.0, 0.1);
  Rng r_tenant(41);
  const MultiLevelRelease via_artifact = tenant.Release(r_tenant);

  Rng open_rng(23);
  DisclosureSession fresh = DisclosureSession::Open(g, spec, open_rng);
  Rng r_fresh(41);
  const MultiLevelRelease via_fresh = fresh.Release(r_fresh);

  ExpectBitIdentical(via_artifact, via_fresh, "attached vs fresh");
}

TEST(CompiledDisclosureTest, ArtifactReleaseMatchesSessionRelease) {
  // CompiledDisclosure::Release is the ledger-free primitive a session
  // wraps: same budget + same rng state => same bits.
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  DisclosureSession session = DisclosureSession::Attach(compiled);
  Rng r1(19);
  Rng r2(19);
  const BudgetSpec budget = SmallSpec().budget;
  ExpectBitIdentical(compiled->Release(budget, r1),
                     session.Release(budget, r2), "artifact vs session");
}

// ---------- concurrency: many tenants, one artifact, no races ----------

TEST(CompiledDisclosureTest, ConcurrentReleasesBitIdenticalToSequential) {
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);

  constexpr int kThreads = 4;
  // Sequential baseline: one release per seed, drawn one after another.
  std::vector<MultiLevelRelease> baseline;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + static_cast<std::uint64_t>(t));
    baseline.push_back(compiled->Release(SmallSpec().budget, rng));
  }

  // Concurrent: same seeds, all threads sharing the artifact (and racing
  // the first-touch of the mechanism cache).
  std::vector<std::optional<MultiLevelRelease>> concurrent(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(100 + static_cast<std::uint64_t>(t));
        concurrent[static_cast<std::size_t>(t)] =
            compiled->Release(SmallSpec().budget, rng);
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(concurrent[static_cast<std::size_t>(t)].has_value());
    ExpectBitIdentical(*concurrent[static_cast<std::size_t>(t)],
                       baseline[static_cast<std::size_t>(t)],
                       "thread " + std::to_string(t));
  }
}

TEST(CompiledDisclosureTest, ConcurrentTenantHandlesOnSharedPool) {
  // exec.num_threads != 1 gives the artifact an owned ThreadPool that every
  // tenant's release shares; concurrent ParallelReleaseAll calls must not
  // race each other (each carries its own completion state) and stay
  // bit-identical to the sequential draws.
  const BipartiteGraph g = TestGraph();
  SessionSpec spec = SmallSpec();
  spec.exec.num_threads = 2;
  spec.exec.noise_chunk_grain = 64;  // small enough that levels really chunk
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, spec, compile_rng);

  std::vector<MultiLevelRelease> baseline;
  for (int t = 0; t < 2; ++t) {
    Rng rng(200 + static_cast<std::uint64_t>(t));
    baseline.push_back(compiled->Release(spec.budget, rng));
  }
  std::vector<std::optional<MultiLevelRelease>> concurrent(2);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        DisclosureSession tenant = DisclosureSession::Attach(compiled);
        Rng rng(200 + static_cast<std::uint64_t>(t));
        concurrent[static_cast<std::size_t>(t)] = tenant.Release(spec.budget, rng);
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(concurrent[static_cast<std::size_t>(t)].has_value());
    ExpectBitIdentical(*concurrent[static_cast<std::size_t>(t)],
                       baseline[static_cast<std::size_t>(t)],
                       "pooled tenant " + std::to_string(t));
  }
}

TEST(CompiledDisclosureTest, ConcurrentDrilldownBuildsIndexExactlyOnce) {
  // The lazy HierarchyIndex is materialised under std::call_once: N threads
  // hitting a cold index concurrently must all observe one fully-built
  // index (this is the TSan-covered regression for the pre-split lazy
  // `index_` which was unsynchronized).
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(31);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  Rng rng(5);
  const MultiLevelRelease release = compiled->Release(SmallSpec().budget, rng);

  const gdp::hier::HierarchyIndex direct_index(compiled->hierarchy());
  const auto expected = DrillDown(release, direct_index,
                                  gdp::graph::Side::kLeft, 42, 4, 1);

  constexpr int kThreads = 8;
  std::vector<std::vector<DrillDownEntry>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          compiled->Drilldown(release, gdp::graph::Side::kLeft, 42, 4, 1);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (const auto& chain : results) {
    ASSERT_EQ(chain.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(chain[i].level, expected[i].level);
      EXPECT_EQ(chain[i].group, expected[i].group);
      EXPECT_EQ(chain[i].noisy_count, expected[i].noisy_count);
    }
  }
}

TEST(CompiledDisclosureTest, ConcurrentValidateAndReleaseShareCache) {
  // ValidateBudget warms the shared mechanism cache while another tenant is
  // mid-release: the cache's internal mutex must make this safe.
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      BudgetSpec budget = SmallSpec().budget;
      budget.epsilon_g = 0.2 + 0.2 * t;
      if (t % 2 == 0) {
        compiled->ValidateBudget(budget);
      } else {
        Rng rng(300 + static_cast<std::uint64_t>(t));
        (void)compiled->Release(budget, rng);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
}

// ---------- handle semantics ----------

TEST(CompiledDisclosureTest, TakeHierarchyCopiesWhenShared) {
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  DisclosureSession a = DisclosureSession::Attach(compiled);
  DisclosureSession b = DisclosureSession::Attach(compiled);
  const gdp::hier::GroupHierarchy taken = std::move(a).TakeHierarchy();
  // `b` still serves from an intact artifact (the shared case copies).
  Rng rng(9);
  EXPECT_EQ(b.Release(rng).num_levels(), 6);
  EXPECT_EQ(taken.num_levels(), 6);
  EXPECT_EQ(compiled->hierarchy().num_levels(), 6);
}

TEST(CompiledDisclosureTest, AttachRejectsNullAndTinyGrant) {
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  EXPECT_THROW((void)DisclosureSession::Attach(nullptr),
               std::invalid_argument);
  // A grant smaller than the Phase-1 spend fails at Attach, before any
  // request-time surprise.
  EXPECT_THROW((void)DisclosureSession::Attach(
                   compiled, compiled->phase1_epsilon_spent() / 2.0, 0.1),
               gdp::common::BudgetExhaustedError);
}

TEST(CompiledDisclosureTest, TryReleaseDeniesWithoutThrowOrDraw) {
  const BipartiteGraph g = TestGraph();
  Rng compile_rng(7);
  const auto compiled = CompiledDisclosure::Compile(g, SmallSpec(), compile_rng);
  const double phase1 = compiled->phase1_epsilon_spent();
  const BudgetSpec budget = SmallSpec().budget;
  // Grant covers phase 1 + exactly one release.
  DisclosureSession tenant = DisclosureSession::Attach(
      compiled, phase1 + budget.phase2_epsilon(), 0.1);
  Rng rng(17);
  ASSERT_TRUE(tenant.TryRelease(budget, rng).has_value());
  const Rng rng_snapshot = rng;
  const std::size_t charges_before = tenant.ledger().charges().size();
  EXPECT_FALSE(tenant.TryRelease(budget, rng).has_value());
  EXPECT_EQ(tenant.ledger().charges().size(), charges_before)
      << "a denied TryRelease must not charge";
  Rng expected = rng_snapshot;
  EXPECT_EQ(rng(), expected()) << "a denied TryRelease must not draw";
  // An uncalibratable budget is still a thrown configuration error.
  BudgetSpec bad = budget;
  bad.epsilon_g = -1.0;
  EXPECT_THROW((void)tenant.TryRelease(bad, rng),
               gdp::common::InvalidBudgetError);
}

}  // namespace
}  // namespace gdp::core
