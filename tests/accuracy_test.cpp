#include "core/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gdp::core {
namespace {

TEST(ExpectedRerTest, GaussianClosedForm) {
  const double sigma =
      MakeMechanism(NoiseKind::kGaussian, 0.999, 1e-5, 500.0)->NoiseStddev();
  EXPECT_NEAR(ExpectedRer(NoiseKind::kGaussian, 0.999, 1e-5, 500.0, 10000.0),
              sigma * std::sqrt(2.0 / M_PI) / 10000.0, 1e-12);
}

TEST(ExpectedRerTest, LaplaceClosedForm) {
  // E|Laplace(b)| = b = Delta/eps.
  EXPECT_NEAR(ExpectedRer(NoiseKind::kLaplace, 0.5, 1e-5, 100.0, 10000.0),
              (100.0 / 0.5) / 10000.0, 1e-12);
}

TEST(ExpectedRerTest, ZeroSensitivityIsExact) {
  EXPECT_EQ(ExpectedRer(NoiseKind::kGaussian, 0.5, 1e-5, 0.0, 100.0), 0.0);
}

TEST(ExpectedRerTest, RejectsNonPositiveTotal) {
  EXPECT_THROW((void)ExpectedRer(NoiseKind::kGaussian, 0.5, 1e-5, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ExpectedRerTest, MatchesEmpiricalMean) {
  const auto mech = MakeMechanism(NoiseKind::kGaussian, 0.8, 1e-5, 200.0);
  gdp::common::Rng rng(3);
  double total_abs = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    total_abs += std::fabs(mech->AddNoise(0.0, rng));
  }
  const double empirical_rer = total_abs / kN / 5000.0;
  EXPECT_NEAR(ExpectedRer(NoiseKind::kGaussian, 0.8, 1e-5, 200.0, 5000.0),
              empirical_rer, empirical_rer * 0.02);
}

TEST(ErrorBoundTest, GaussianQuantileBound) {
  const double sigma =
      MakeMechanism(NoiseKind::kGaussian, 0.9, 1e-5, 100.0)->NoiseStddev();
  // 95% bound = sigma * 1.96.
  EXPECT_NEAR(ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 100.0, 0.05),
              sigma * 1.959963984540054, sigma * 1e-6);
}

TEST(ErrorBoundTest, LaplaceTailBound) {
  // P(|X| > b ln(1/beta)) = beta.
  EXPECT_NEAR(ErrorBound(NoiseKind::kLaplace, 1.0, 1e-5, 10.0, 0.01),
              10.0 * std::log(100.0), 1e-9);
}

TEST(ErrorBoundTest, SmallerBetaLargerBound) {
  EXPECT_GT(ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 100.0, 0.001),
            ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 100.0, 0.1));
}

TEST(ErrorBoundTest, RejectsBadBeta) {
  EXPECT_THROW((void)ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 1.0, 1.0),
               std::invalid_argument);
}

TEST(ErrorBoundTest, EmpiricalCoverage) {
  const double bound = ErrorBound(NoiseKind::kGaussian, 0.9, 1e-5, 50.0, 0.05);
  const auto mech = MakeMechanism(NoiseKind::kGaussian, 0.9, 1e-5, 50.0);
  gdp::common::Rng rng(7);
  int violations = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (std::fabs(mech->AddNoise(0.0, rng)) > bound) {
      ++violations;
    }
  }
  EXPECT_NEAR(static_cast<double>(violations) / kN, 0.05, 0.005);
}

TEST(EpsilonForTargetRerTest, InvertsExpectedRer) {
  const double eps = EpsilonForTargetRer(NoiseKind::kGaussian, 1e-5, 1000.0,
                                         100000.0, 0.02);
  EXPECT_NEAR(ExpectedRer(NoiseKind::kGaussian, eps, 1e-5, 1000.0, 100000.0),
              0.02, 1e-6);
}

TEST(EpsilonForTargetRerTest, TighterTargetNeedsMoreBudget) {
  const double loose = EpsilonForTargetRer(NoiseKind::kGaussian, 1e-5, 1000.0,
                                           100000.0, 0.1);
  const double tight = EpsilonForTargetRer(NoiseKind::kGaussian, 1e-5, 1000.0,
                                           100000.0, 0.001);
  EXPECT_GT(tight, loose);
}

TEST(EpsilonForTargetRerTest, RejectsBadTarget) {
  EXPECT_THROW((void)EpsilonForTargetRer(NoiseKind::kGaussian, 1e-5, 1.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(PlanLevelBudgetsTest, ValidatesInputs) {
  EXPECT_THROW((void)PlanLevelBudgets(NoiseKind::kGaussian, 1e-5, {}, {}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)PlanLevelBudgets(NoiseKind::kGaussian, 1e-5, {1.0},
                                      {0.1, 0.2}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)PlanLevelBudgets(NoiseKind::kGaussian, 1e-5, {1.0}, {0.1},
                                      1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)PlanLevelBudgets(NoiseKind::kGaussian, 1e-5, {-1.0}, {0.1},
                                      1.0, 1.0),
               std::invalid_argument);
}

TEST(PlanLevelBudgetsTest, EpsilonsSumToBudget) {
  const auto plan = PlanLevelBudgets(NoiseKind::kGaussian, 1e-5,
                                     {100.0, 1000.0, 10000.0},
                                     {0.01, 0.05, 0.3}, 100000.0, 2.0);
  double total = 0.0;
  for (const auto& lb : plan) {
    total += lb.epsilon;
  }
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(PlanLevelBudgetsTest, AchievedRerProportionalToTolerances) {
  // Laplace noise scales exactly as 1/eps, so uniform budget scaling
  // preserves the tolerance ratios exactly.  (Gaussian only approximately:
  // the calibration switches to the analytic curve above eps = 1.)
  const auto plan = PlanLevelBudgets(NoiseKind::kLaplace, 1e-5,
                                     {500.0, 500.0}, {0.01, 0.04}, 50000.0, 1.0);
  EXPECT_NEAR(plan[1].expected_rer / plan[0].expected_rer, 4.0, 1e-6);
}

TEST(PlanLevelBudgetsTest, LargeBudgetBeatsTolerances) {
  const auto plan = PlanLevelBudgets(NoiseKind::kLaplace, 1e-5, {100.0},
                                     {0.5}, 10000.0, 100.0);
  EXPECT_LT(plan[0].expected_rer, 0.5);
}

}  // namespace
}  // namespace gdp::core
