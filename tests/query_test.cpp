#include "query/query.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::query {
namespace {

using gdp::graph::BipartiteGraph;
using gdp::hier::GroupInfo;
using gdp::hier::kNoParent;

BipartiteGraph SmallGraph() {
  return BipartiteGraph(3, 4,
                        {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {1, 3}, {2, 3}});
}

TEST(AssociationCountQueryTest, EvaluatesEdgeCount) {
  const AssociationCountQuery q;
  EXPECT_EQ(q.Name(), "association_count");
  const auto a = q.Evaluate(SmallGraph());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
}

TEST(AssociationCountQueryTest, SensitivityAtTopIsEdgeCount) {
  const AssociationCountQuery q;
  const BipartiteGraph g = SmallGraph();
  EXPECT_DOUBLE_EQ(q.GroupSensitivity(g, Partition::TopLevel(3, 4)), 6.0);
}

TEST(AssociationCountQueryTest, SensitivityAtSingletonsIsMaxDegree) {
  const AssociationCountQuery q;
  const BipartiteGraph g = SmallGraph();
  EXPECT_DOUBLE_EQ(q.GroupSensitivity(g, Partition::Singletons(3, 4)), 3.0);
}

TEST(GroupCountQueryTest, EvaluatesPerGroupDegreeSums) {
  const BipartiteGraph g = SmallGraph();
  const Partition p({0, 0, 1}, {2, 2, 2, 2},
                    {GroupInfo{Side::kLeft, 2, kNoParent},
                     GroupInfo{Side::kLeft, 1, kNoParent},
                     GroupInfo{Side::kRight, 4, kNoParent}});
  const GroupCountQuery q(p);
  const auto a = q.Evaluate(g);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0], 5.0);  // deg(l0)+deg(l1)
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 6.0);
}

TEST(GroupCountQueryTest, SensitivityUsesSqrtTwoBound) {
  const BipartiteGraph g = SmallGraph();
  const Partition top = Partition::TopLevel(3, 4);
  const GroupCountQuery q(top);
  EXPECT_NEAR(q.GroupSensitivity(g, top), std::sqrt(2.0) * 6.0, 1e-12);
}

TEST(DegreeHistogramQueryTest, BinsWithOverflow) {
  const BipartiteGraph g = SmallGraph();
  const DegreeHistogramQuery q(Side::kLeft, 2);
  const auto a = q.Evaluate(g);
  // Left degrees: 2, 3, 1 -> bins [0]=0 [1]=1 [2]=1 overflow=1.
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 1.0);
  EXPECT_DOUBLE_EQ(a[3], 1.0);
}

TEST(DegreeHistogramQueryTest, BinsSumToNodeCount) {
  gdp::common::Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(100, 80, 600, rng);
  const DegreeHistogramQuery q(Side::kRight, 10);
  const auto a = q.Evaluate(g);
  EXPECT_DOUBLE_EQ(std::accumulate(a.begin(), a.end(), 0.0), 80.0);
}

TEST(DegreeHistogramQueryTest, NameEncodesSide) {
  EXPECT_EQ(DegreeHistogramQuery(Side::kLeft, 5).Name(),
            "degree_histogram_left");
  EXPECT_EQ(DegreeHistogramQuery(Side::kRight, 5).Name(),
            "degree_histogram_right");
}

TEST(DegreeHistogramQueryTest, RejectsZeroMaxDegree) {
  EXPECT_THROW(DegreeHistogramQuery(Side::kLeft, 0), std::invalid_argument);
}

TEST(DegreeHistogramQueryTest, SensitivityBoundFormula) {
  const BipartiteGraph g = SmallGraph();
  const Partition top = Partition::TopLevel(3, 4);
  const DegreeHistogramQuery q(Side::kLeft, 3);
  // Worst group: right side (4 nodes, weight 6): 4 + 2*6 = 16.
  EXPECT_DOUBLE_EQ(q.GroupSensitivity(g, top), 16.0);
}

}  // namespace
}  // namespace gdp::query
