#include "hier/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/generators.hpp"

namespace gdp::hier {
namespace {

using gdp::graph::BipartiteGraph;

// 4 left, 4 right nodes; left split {0,1}/{2,3}, right split {0}/{1,2,3}.
Partition FourGroupPartition() {
  return Partition({0, 0, 1, 1}, {2, 3, 3, 3},
                   {GroupInfo{Side::kLeft, 2, kNoParent},
                    GroupInfo{Side::kLeft, 2, kNoParent},
                    GroupInfo{Side::kRight, 1, kNoParent},
                    GroupInfo{Side::kRight, 3, kNoParent}});
}

TEST(PartitionTest, ValidConstruction) {
  const Partition p = FourGroupPartition();
  EXPECT_EQ(p.num_groups(), 4u);
  EXPECT_EQ(p.num_left_nodes(), 4u);
  EXPECT_EQ(p.num_right_nodes(), 4u);
}

TEST(PartitionTest, GroupOfLooksUpLabels) {
  const Partition p = FourGroupPartition();
  EXPECT_EQ(p.GroupOf(Side::kLeft, 0), 0u);
  EXPECT_EQ(p.GroupOf(Side::kLeft, 3), 1u);
  EXPECT_EQ(p.GroupOf(Side::kRight, 0), 2u);
  EXPECT_EQ(p.GroupOf(Side::kRight, 2), 3u);
  EXPECT_THROW((void)p.GroupOf(Side::kLeft, 4), std::out_of_range);
}

TEST(PartitionTest, NodesOfMaterialisesMembers) {
  const Partition p = FourGroupPartition();
  EXPECT_EQ(p.NodesOf(0), (std::vector<gdp::graph::NodeIndex>{0, 1}));
  EXPECT_EQ(p.NodesOf(3), (std::vector<gdp::graph::NodeIndex>{1, 2, 3}));
}

TEST(PartitionTest, RejectsLabelOutOfRange) {
  EXPECT_THROW(Partition({0, 9}, {1},
                         {GroupInfo{Side::kLeft, 2, kNoParent},
                          GroupInfo{Side::kRight, 1, kNoParent}}),
               std::invalid_argument);
}

TEST(PartitionTest, RejectsSideMismatch) {
  // Left node labelled into a right-side group.
  EXPECT_THROW(Partition({0}, {1},
                         {GroupInfo{Side::kRight, 1, kNoParent},
                          GroupInfo{Side::kRight, 1, kNoParent}}),
               std::invalid_argument);
}

TEST(PartitionTest, RejectsSizeMismatch) {
  EXPECT_THROW(Partition({0, 0}, {1},
                         {GroupInfo{Side::kLeft, 1, kNoParent},  // says 1, is 2
                          GroupInfo{Side::kRight, 1, kNoParent}}),
               std::invalid_argument);
}

TEST(PartitionTest, RejectsEmptyGroup) {
  EXPECT_THROW(Partition({0}, {1},
                         {GroupInfo{Side::kLeft, 1, kNoParent},
                          GroupInfo{Side::kRight, 1, kNoParent},
                          GroupInfo{Side::kLeft, 0, kNoParent}}),
               std::invalid_argument);
}

TEST(PartitionTest, TopLevelHasTwoSideGroups) {
  const Partition p = Partition::TopLevel(5, 7);
  EXPECT_EQ(p.num_groups(), 2u);
  EXPECT_EQ(p.group(0).side, Side::kLeft);
  EXPECT_EQ(p.group(0).size, 5u);
  EXPECT_EQ(p.group(1).side, Side::kRight);
  EXPECT_EQ(p.group(1).size, 7u);
  for (gdp::graph::NodeIndex v = 0; v < 5; ++v) {
    EXPECT_EQ(p.GroupOf(Side::kLeft, v), 0u);
  }
}

TEST(PartitionTest, TopLevelRejectsEmptySides) {
  EXPECT_THROW((void)Partition::TopLevel(0, 3), std::invalid_argument);
  EXPECT_THROW((void)Partition::TopLevel(3, 0), std::invalid_argument);
}

TEST(PartitionTest, SingletonsOneGroupPerNode) {
  const Partition p = Partition::Singletons(3, 2);
  EXPECT_EQ(p.num_groups(), 5u);
  EXPECT_EQ(p.GroupOf(Side::kLeft, 2), 2u);
  EXPECT_EQ(p.GroupOf(Side::kRight, 0), 3u);
  EXPECT_EQ(p.MaxGroupSize(), 1u);
}

TEST(PartitionTest, GroupDegreeSumsMatchManualCount) {
  // Graph on the FourGroupPartition shape.
  const BipartiteGraph g(4, 4, {{0, 0}, {1, 0}, {2, 1}, {3, 2}, {3, 3}});
  const Partition p = FourGroupPartition();
  const auto sums = p.GroupDegreeSums(g);
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_EQ(sums[0], 2u);  // deg(l0)+deg(l1) = 1+1
  EXPECT_EQ(sums[1], 3u);  // deg(l2)+deg(l3) = 1+2
  EXPECT_EQ(sums[2], 2u);  // deg(r0) = 2
  EXPECT_EQ(sums[3], 3u);  // deg(r1..r3) = 1+1+1
  EXPECT_EQ(p.MaxGroupDegreeSum(g), 3u);
}

TEST(PartitionTest, GroupDegreeSumsPerSideTotalEdges) {
  gdp::common::Rng rng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(40, 40, 300, rng);
  const Partition p = Partition::TopLevel(40, 40);
  const auto sums = p.GroupDegreeSums(g);
  EXPECT_EQ(sums[0], g.num_edges());
  EXPECT_EQ(sums[1], g.num_edges());
}

TEST(PartitionTest, ShardedGroupDegreeSumsExactlyEqualSequentialScan) {
  gdp::common::Rng rng(13);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(90, 70, 800, rng);
  // Singleton partition: the scan ReleasePlan shards in practice.
  const Partition p = Partition::Singletons(90, 70);
  const std::vector<EdgeCount> sequential = p.GroupDegreeSums(g);
  gdp::common::ThreadPool pool(4);
  // grain 16 over 160 nodes → 10 shards; exact integer equality required.
  EXPECT_EQ(p.GroupDegreeSums(g, pool, 16), sequential);
  // Shard layout (and therefore the result) is pool-size independent.
  gdp::common::ThreadPool one(1);
  EXPECT_EQ(p.GroupDegreeSums(g, one, 16), sequential);
}

TEST(PartitionTest, ShardedScanCountsAsOneScanAndFallsBackWhenSmall) {
  gdp::common::Rng rng(17);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(90, 70, 800, rng);
  const Partition p = Partition::Singletons(90, 70);
  gdp::common::ThreadPool pool(2);
  std::uint64_t before = Partition::DegreeSumScanCount();
  (void)p.GroupDegreeSums(g, pool, 16);
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 1u);
  // A grain larger than the node count takes the sequential path (still one
  // scan, same values).
  before = Partition::DegreeSumScanCount();
  EXPECT_EQ(p.GroupDegreeSums(g, pool, 1 << 20), p.GroupDegreeSums(g));
  EXPECT_EQ(Partition::DegreeSumScanCount() - before, 2u);
  EXPECT_THROW((void)p.GroupDegreeSums(g, pool, 0), std::invalid_argument);
}

TEST(PartitionTest, GroupDegreeSumsRejectsDimensionMismatch) {
  const BipartiteGraph g(3, 3, {});
  const Partition p = Partition::TopLevel(4, 4);
  EXPECT_THROW((void)p.GroupDegreeSums(g), std::invalid_argument);
}

TEST(PartitionTest, IsRefinedByChecksParents) {
  const Partition coarse = Partition::TopLevel(2, 2);
  // Fine: left split into singletons parented to 0, right one group -> 1.
  const Partition fine({0, 1}, {2, 2},
                       {GroupInfo{Side::kLeft, 1, 0}, GroupInfo{Side::kLeft, 1, 0},
                        GroupInfo{Side::kRight, 2, 1}});
  EXPECT_TRUE(coarse.IsRefinedBy(fine));
}

TEST(PartitionTest, IsRefinedByRejectsWrongParent) {
  const Partition coarse = Partition::TopLevel(2, 2);
  const Partition fine({0, 1}, {2, 2},
                       {GroupInfo{Side::kLeft, 1, 0},
                        GroupInfo{Side::kLeft, 1, 1},  // wrong parent (right group)
                        GroupInfo{Side::kRight, 2, 1}});
  EXPECT_FALSE(coarse.IsRefinedBy(fine));
}

TEST(PartitionTest, IsRefinedByRejectsDimensionMismatch) {
  const Partition a = Partition::TopLevel(2, 2);
  const Partition b = Partition::TopLevel(3, 2);
  EXPECT_FALSE(a.IsRefinedBy(b));
}

TEST(PartitionTest, MaxGroupSizeReportsLargest) {
  const Partition p = FourGroupPartition();
  EXPECT_EQ(p.MaxGroupSize(), 3u);
}

}  // namespace
}  // namespace gdp::hier
