#include "core/group_dp_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "dp/gaussian.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  return gdp::graph::GenerateUniformRandom(64, 64, 1000, rng);
}

gdp::hier::GroupHierarchy TestHierarchy(const BipartiteGraph& g, int depth = 4) {
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = depth;
  const gdp::hier::Specializer spec(cfg);
  Rng rng(5);
  return spec.BuildHierarchy(g, rng).hierarchy;
}

TEST(NoiseKindNameTest, AllNamed) {
  EXPECT_STREQ(NoiseKindName(NoiseKind::kGaussian), "gaussian");
  EXPECT_STREQ(NoiseKindName(NoiseKind::kAnalyticGaussian), "analytic_gaussian");
  EXPECT_STREQ(NoiseKindName(NoiseKind::kLaplace), "laplace");
  EXPECT_STREQ(NoiseKindName(NoiseKind::kDiscreteGaussian), "discrete_gaussian");
  EXPECT_STREQ(NoiseKindName(NoiseKind::kGeometric), "geometric");
}

TEST(MakeMechanismTest, ProducesEveryKind) {
  for (const NoiseKind kind :
       {NoiseKind::kGaussian, NoiseKind::kAnalyticGaussian, NoiseKind::kLaplace,
        NoiseKind::kDiscreteGaussian, NoiseKind::kGeometric}) {
    const auto m = MakeMechanism(kind, 0.9, 1e-5, 10.0);
    ASSERT_NE(m, nullptr);
    EXPECT_GT(m->NoiseStddev(), 0.0);
  }
}

TEST(MakeMechanismTest, GaussianAutoUpgradesAboveEpsilonOne) {
  // Classic calibration is invalid at eps=2; the factory must switch to the
  // analytic curve instead of throwing.
  const auto m = MakeMechanism(NoiseKind::kGaussian, 2.0, 1e-5, 10.0);
  EXPECT_GT(m->NoiseStddev(), 0.0);
}

TEST(GroupDpEngineTest, ConfigValidatedAtConstruction) {
  ReleaseConfig bad;
  bad.epsilon_g = 0.0;
  EXPECT_THROW(GroupDpEngine{bad}, std::invalid_argument);
  bad = ReleaseConfig{};
  bad.delta = 1.0;
  EXPECT_THROW(GroupDpEngine{bad}, std::invalid_argument);
  bad = ReleaseConfig{};
  bad.sensitivity_override = -1.0;
  EXPECT_THROW(GroupDpEngine{bad}, std::invalid_argument);
}

TEST(GroupDpEngineTest, NoiseStddevMatchesClassicGaussianFormula) {
  ReleaseConfig cfg;
  cfg.epsilon_g = 0.999;
  cfg.delta = 1e-5;
  const GroupDpEngine engine(cfg);
  const double delta_sigma = gdp::dp::ClassicGaussianSigma(
      gdp::dp::Epsilon(0.999), gdp::dp::Delta(1e-5), gdp::dp::L2Sensitivity(500.0));
  EXPECT_NEAR(engine.NoiseStddevFor(500.0), delta_sigma, 1e-9);
}

TEST(GroupDpEngineTest, ReleaseLevelRecordsSensitivityAndTruth) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(11);
  const LevelRelease lr = engine.ReleaseLevel(g, h.level(2), 2, rng);
  EXPECT_EQ(lr.level, 2);
  EXPECT_DOUBLE_EQ(lr.true_total, static_cast<double>(g.num_edges()));
  EXPECT_DOUBLE_EQ(lr.sensitivity,
                   static_cast<double>(h.level(2).MaxGroupDegreeSum(g)));
  EXPECT_GT(lr.noise_stddev, 0.0);
  EXPECT_NE(lr.noisy_total, lr.true_total);
}

TEST(GroupDpEngineTest, GroupCountsIncludedByDefault) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(13);
  const LevelRelease lr = engine.ReleaseLevel(g, h.level(3), 3, rng);
  EXPECT_EQ(lr.true_group_counts.size(), h.level(3).num_groups());
  EXPECT_EQ(lr.noisy_group_counts.size(), h.level(3).num_groups());
}

TEST(GroupDpEngineTest, GroupCountsOmittedWhenDisabled) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  Rng rng(13);
  const LevelRelease lr = engine.ReleaseLevel(g, h.level(3), 3, rng);
  EXPECT_TRUE(lr.true_group_counts.empty());
  EXPECT_TRUE(lr.noisy_group_counts.empty());
}

TEST(GroupDpEngineTest, CoarserLevelsGetMoreNoise) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g, 5);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(17);
  const MultiLevelRelease r = engine.ReleaseAll(g, h, rng);
  for (int lvl = 1; lvl < r.num_levels(); ++lvl) {
    EXPECT_GE(r.level(lvl).noise_stddev, r.level(lvl - 1).noise_stddev)
        << "level " << lvl;
  }
}

TEST(GroupDpEngineTest, SmallerEpsilonMeansMoreNoise) {
  ReleaseConfig strict;
  strict.epsilon_g = 0.1;
  ReleaseConfig loose;
  loose.epsilon_g = 0.999;
  const GroupDpEngine e_strict(strict);
  const GroupDpEngine e_loose(loose);
  EXPECT_GT(e_strict.NoiseStddevFor(1000.0), e_loose.NoiseStddevFor(1000.0));
}

TEST(GroupDpEngineTest, SensitivityOverrideIsHonoured) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.sensitivity_override = 12345.0;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  Rng rng(19);
  const LevelRelease lr = engine.ReleaseLevel(g, h.level(1), 1, rng);
  EXPECT_DOUBLE_EQ(lr.sensitivity, 12345.0);
}

TEST(GroupDpEngineTest, EdgelessGraphReleasedExactly) {
  const BipartiteGraph g(8, 8, {});
  const Partition top = Partition::TopLevel(8, 8);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(23);
  const LevelRelease lr = engine.ReleaseLevel(g, top, 0, rng);
  EXPECT_EQ(lr.noisy_total, 0.0);
  EXPECT_EQ(lr.noise_stddev, 0.0);
}

// Minimal valid hierarchy over an edgeless 2x2 graph: singletons -> top.
gdp::hier::GroupHierarchy EdgelessHierarchy() {
  using gdp::hier::GroupInfo;
  using gdp::hier::Side;
  std::vector<GroupInfo> g0{GroupInfo{Side::kLeft, 1, 0},
                            GroupInfo{Side::kLeft, 1, 0},
                            GroupInfo{Side::kRight, 1, 1},
                            GroupInfo{Side::kRight, 1, 1}};
  std::vector<Partition> levels;
  levels.emplace_back(std::vector<gdp::hier::GroupId>{0, 1},
                      std::vector<gdp::hier::GroupId>{2, 3}, std::move(g0));
  levels.push_back(Partition::TopLevel(2, 2));
  return gdp::hier::GroupHierarchy(std::move(levels));
}

TEST(GroupDpEngineTest, OverrideCannotManufactureNoiseWhenComputedDeltaIsZero) {
  // Δℓ computed from the data is 0 (edgeless graph) but an override is set:
  // both release paths must take the exact-release branch — a Δ = 0 vector
  // mechanism cannot be calibrated, and there is no association to protect.
  const BipartiteGraph g(2, 2, {});
  const auto h = EdgelessHierarchy();
  ReleaseConfig cfg;
  cfg.sensitivity_override = 7.5;
  const GroupDpEngine engine(cfg);
  Rng plan_rng(43);
  Rng legacy_rng(43);
  const MultiLevelRelease planned = engine.ReleaseAll(g, h, plan_rng);
  const MultiLevelRelease legacy = engine.ReleaseAllLegacy(g, h, legacy_rng);
  for (const MultiLevelRelease* r : {&planned, &legacy}) {
    ASSERT_EQ(r->num_levels(), h.num_levels());
    for (const auto& lvl : r->levels()) {
      EXPECT_EQ(lvl.sensitivity, 0.0);  // recorded Δ is the computed zero
      EXPECT_EQ(lvl.noise_stddev, 0.0);
      EXPECT_EQ(lvl.noisy_total, 0.0);
      for (const double c : lvl.noisy_group_counts) {
        EXPECT_EQ(c, 0.0);
      }
      EXPECT_EQ(lvl.noisy_group_counts.size(), lvl.true_group_counts.size());
    }
  }
}

TEST(GroupDpEngineTest, LegacyPathIsServedFromTheMechanismCache) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng rng(47);
  EXPECT_EQ(engine.MechanismCacheSize(), 0u);
  (void)engine.ReleaseAllLegacy(g, h, rng);
  const std::size_t after_first = engine.MechanismCacheSize();
  EXPECT_GT(after_first, 0u);
  // A repeat release re-uses every calibration: pure cache hits.
  (void)engine.ReleaseAllLegacy(g, h, rng);
  EXPECT_EQ(engine.MechanismCacheSize(), after_first);
  // The plan path keys calibrations identically, so it adds nothing either.
  (void)engine.ReleaseAll(g, h, rng);
  EXPECT_EQ(engine.MechanismCacheSize(), after_first);
}

TEST(GroupDpEngineTest, ClampNonNegativeEliminatesNegativeCounts) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g, 5);
  ReleaseConfig cfg;
  cfg.epsilon_g = 0.1;  // big noise: negatives certain without clamping
  cfg.clamp_nonnegative = true;
  const GroupDpEngine engine(cfg);
  Rng rng(29);
  const MultiLevelRelease r = engine.ReleaseAll(g, h, rng);
  for (const auto& lvl : r.levels()) {
    EXPECT_GE(lvl.noisy_total, 0.0);
    for (const double c : lvl.noisy_group_counts) {
      EXPECT_GE(c, 0.0);
    }
  }
}

TEST(GroupDpEngineTest, ReleaseAllIsDeterministicUnderSeed) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  const GroupDpEngine engine(ReleaseConfig{});
  Rng r1(31);
  Rng r2(31);
  const MultiLevelRelease a = engine.ReleaseAll(g, h, r1);
  const MultiLevelRelease b = engine.ReleaseAll(g, h, r2);
  for (int lvl = 0; lvl < a.num_levels(); ++lvl) {
    EXPECT_DOUBLE_EQ(a.level(lvl).noisy_total, b.level(lvl).noisy_total);
  }
}

TEST(GroupDpEngineTest, EmpiricalNoiseMatchesReportedStddev) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.include_group_counts = false;
  const GroupDpEngine engine(cfg);
  Rng rng(37);
  gdp::common::RunningStats s;
  double reported = 0.0;
  for (int t = 0; t < 4000; ++t) {
    const LevelRelease lr = engine.ReleaseLevel(g, h.level(2), 2, rng);
    s.Add(lr.noisy_total - lr.true_total);
    reported = lr.noise_stddev;
  }
  EXPECT_NEAR(s.stddev(), reported, reported * 0.05);
  EXPECT_NEAR(s.mean(), 0.0, reported * 0.05);
}

// Parameterised sweep: every noise kind must produce a well-formed release.
class EngineNoiseKindTest : public ::testing::TestWithParam<NoiseKind> {};

TEST_P(EngineNoiseKindTest, ReleasesAllLevels) {
  const BipartiteGraph g = TestGraph();
  const auto h = TestHierarchy(g);
  ReleaseConfig cfg;
  cfg.noise = GetParam();
  const GroupDpEngine engine(cfg);
  Rng rng(41);
  const MultiLevelRelease r = engine.ReleaseAll(g, h, rng);
  EXPECT_EQ(r.num_levels(), h.num_levels());
  for (const auto& lvl : r.levels()) {
    EXPECT_TRUE(std::isfinite(lvl.noisy_total));
    EXPECT_GT(lvl.noise_stddev, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EngineNoiseKindTest,
    ::testing::Values(NoiseKind::kGaussian, NoiseKind::kAnalyticGaussian,
                      NoiseKind::kLaplace, NoiseKind::kDiscreteGaussian,
                      NoiseKind::kGeometric),
    [](const ::testing::TestParamInfo<NoiseKind>& info) {
      return NoiseKindName(info.param);
    });

}  // namespace
}  // namespace gdp::core
