// GDPNET01 wire format: encode/decode round trips for every message kind,
// framing (CRC, length bounds, partial buffers), and the hostile-input
// discipline — every decoder must throw NetProtocolError on truncated,
// oversized, or corrupted bytes, never read past the buffer or allocate from
// an attacker-declared count.  Mirrors the snapshot hostile-header suite;
// net_server_test replays the same attacks over a real socket.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>

#include "common/error.hpp"

namespace gdp::net::wire {
namespace {

using gdp::common::NetProtocolError;

ServeRequest SampleServeRequest() {
  ServeRequest req;
  req.tenant = "alice";
  req.dataset = "dblp";
  req.budget.epsilon_g = 0.75;
  req.budget.delta = 1e-6;
  req.budget.phase1_fraction = 0.2;
  req.budget.noise = 2;  // Laplace
  return req;
}

ServeOutcome SampleOutcome() {
  ServeOutcome outcome;
  outcome.granted = true;
  outcome.privilege = 3;
  outcome.level = 2;
  outcome.epsilon_spent = 0.825;
  outcome.epsilon_remaining = 1.175;
  outcome.accounting = 2;  // rdp
  outcome.accounted_epsilon = 0.41;
  outcome.accounted_delta = 2e-6;
  outcome.view.level = 2;
  outcome.view.sensitivity = 17.0;
  outcome.view.noise_stddev = 123.5;
  outcome.view.group_noise_stddev = 98.7;
  outcome.view.true_total = 2500.0;
  outcome.view.noisy_total = 2481.25;
  outcome.view.true_group_counts = {10.0, 20.0, 30.0};
  outcome.view.noisy_group_counts = {9.5, 21.25, 28.75};
  return outcome;
}

// ---------- framing ----------

TEST(NetFramingTest, FrameRoundTripsThroughTryDeframe) {
  const std::string payload = Encode(SampleServeRequest());
  std::string buffer = Frame(payload);
  EXPECT_EQ(buffer.size(), kFrameHeaderSize + payload.size());
  const std::optional<std::string> got = TryDeframe(buffer);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(buffer.empty());
}

TEST(NetFramingTest, PartialFrameAsksForMoreBytes) {
  const std::string framed = Frame(EncodeStatsRequest());
  for (std::size_t keep = 0; keep + 1 < framed.size(); ++keep) {
    std::string buffer = framed.substr(0, keep);
    EXPECT_FALSE(TryDeframe(buffer).has_value()) << "at " << keep << " bytes";
    EXPECT_EQ(buffer.size(), keep) << "partial bytes must stay buffered";
  }
}

TEST(NetFramingTest, TwoFramesDeframeInOrder) {
  const std::string first = Encode(SampleServeRequest());
  const std::string second = EncodeStatsRequest();
  std::string buffer = Frame(first) + Frame(second);
  EXPECT_EQ(TryDeframe(buffer), first);
  EXPECT_EQ(TryDeframe(buffer), second);
  EXPECT_TRUE(buffer.empty());
}

TEST(NetFramingTest, CorruptedCrcThrows) {
  std::string buffer = Frame(EncodeStatsRequest());
  buffer.back() ^= 0x01;  // flip a payload bit; the header CRC now mismatches
  EXPECT_THROW((void)TryDeframe(buffer), NetProtocolError);
}

TEST(NetFramingTest, CorruptedHeaderCrcThrows) {
  std::string buffer = Frame(EncodeStatsRequest());
  buffer[4] ^= 0xFF;  // the CRC field itself
  EXPECT_THROW((void)TryDeframe(buffer), NetProtocolError);
}

TEST(NetFramingTest, ZeroDeclaredLengthThrows) {
  std::string buffer(kFrameHeaderSize, '\0');
  EXPECT_THROW((void)TryDeframe(buffer), NetProtocolError);
}

// The oversized declared length must be rejected from the HEADER alone —
// before the decoder waits for (or allocates) 4 GiB that will never come.
TEST(NetFramingTest, OversizedDeclaredLengthThrowsImmediately) {
  std::string buffer = Frame(EncodeStatsRequest());
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(buffer.data(), &huge, sizeof(huge));
  EXPECT_THROW((void)TryDeframe(buffer), NetProtocolError);
}

TEST(NetFramingTest, FrameRejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW((void)Frame(""), NetProtocolError);
  EXPECT_THROW((void)Frame(std::string(kMaxPayload + 1, 'x')),
               NetProtocolError);
}

// ---------- request round trips ----------

TEST(NetWireTest, ServeRequestRoundTrips) {
  const ServeRequest req = SampleServeRequest();
  const ServeRequest got = DecodeServeRequest(Encode(req));
  EXPECT_EQ(got.tenant, req.tenant);
  EXPECT_EQ(got.dataset, req.dataset);
  EXPECT_DOUBLE_EQ(got.budget.epsilon_g, req.budget.epsilon_g);
  EXPECT_DOUBLE_EQ(got.budget.delta, req.budget.delta);
  EXPECT_DOUBLE_EQ(got.budget.phase1_fraction, req.budget.phase1_fraction);
  EXPECT_EQ(got.budget.noise, req.budget.noise);
}

TEST(NetWireTest, SweepRequestRoundTrips) {
  SweepRequest req;
  req.tenant = "bob";
  req.dataset = "imdb";
  for (double eps : {0.25, 0.5, 0.999}) {
    WireBudget budget;
    budget.epsilon_g = eps;
    req.budgets.push_back(budget);
  }
  const SweepRequest got = DecodeSweepRequest(Encode(req));
  ASSERT_EQ(got.budgets.size(), 3u);
  EXPECT_DOUBLE_EQ(got.budgets[2].epsilon_g, 0.999);
}

TEST(NetWireTest, DrilldownRequestRoundTrips) {
  DrilldownRequest req;
  req.tenant = "carol";
  req.dataset = "dblp";
  req.side = 1;
  req.node = 4242;
  const DrilldownRequest got = DecodeDrilldownRequest(Encode(req));
  EXPECT_EQ(got.side, 1);
  EXPECT_EQ(got.node, 4242u);
}

TEST(NetWireTest, AnswerRequestRoundTrips) {
  AnswerRequest req;
  req.tenant = "dave";
  req.dataset = "dblp";
  req.queries.push_back(WireQuery{0, 0, 0});
  req.queries.push_back(WireQuery{2, 1, 16});
  const AnswerRequest got = DecodeAnswerRequest(Encode(req));
  ASSERT_EQ(got.queries.size(), 2u);
  EXPECT_EQ(got.queries[1].kind, 2);
  EXPECT_EQ(got.queries[1].side, 1);
  EXPECT_EQ(got.queries[1].param, 16u);
}

TEST(NetWireTest, StatsRequestHasEmptyBody) {
  const std::string payload = EncodeStatsRequest();
  EXPECT_EQ(payload.size(), 1u);
  EXPECT_NO_THROW(DecodeStatsRequest(payload));
}

// ---------- response round trips ----------

TEST(NetWireTest, ServeResponseRoundTripsWithView) {
  const ServeOutcome outcome = SampleOutcome();
  const ServeOutcome got = DecodeServeResponse(Encode(outcome));
  EXPECT_TRUE(got.granted);
  EXPECT_EQ(got.privilege, 3);
  EXPECT_EQ(got.level, 2);
  EXPECT_DOUBLE_EQ(got.epsilon_spent, 0.825);
  EXPECT_DOUBLE_EQ(got.accounted_delta, 2e-6);
  EXPECT_EQ(got.view.noisy_group_counts, outcome.view.noisy_group_counts);
  EXPECT_EQ(got.view.true_group_counts, outcome.view.true_group_counts);
  EXPECT_DOUBLE_EQ(got.view.noisy_total, outcome.view.noisy_total);
}

TEST(NetWireTest, DeniedOutcomeRoundTripsReason) {
  ServeOutcome outcome;
  outcome.granted = false;
  outcome.denial_reason = "session budget exhausted";
  const ServeOutcome got = DecodeServeResponse(Encode(outcome));
  EXPECT_FALSE(got.granted);
  EXPECT_EQ(got.denial_reason, "session budget exhausted");
  EXPECT_TRUE(got.view.noisy_group_counts.empty());
}

TEST(NetWireTest, SweepResponseRoundTrips) {
  SweepResponse resp;
  resp.outcomes.push_back(SampleOutcome());
  ServeOutcome denied;
  denied.denial_reason = "no";
  resp.outcomes.push_back(denied);
  const SweepResponse got = DecodeSweepResponse(Encode(resp));
  ASSERT_EQ(got.outcomes.size(), 2u);
  EXPECT_TRUE(got.outcomes[0].granted);
  EXPECT_FALSE(got.outcomes[1].granted);
}

TEST(NetWireTest, DrilldownResponseRoundTrips) {
  DrilldownResponse resp;
  resp.outcome = SampleOutcome();
  resp.chain.push_back(WireDrillEntry{4, 7, 120, 55.5, 52.0});
  resp.chain.push_back(WireDrillEntry{3, 1, 30, 12.25, 13.0});
  const DrilldownResponse got = DecodeDrilldownResponse(Encode(resp));
  ASSERT_EQ(got.chain.size(), 2u);
  EXPECT_EQ(got.chain[0].level, 4);
  EXPECT_EQ(got.chain[1].group_size, 30u);
  EXPECT_DOUBLE_EQ(got.chain[1].noisy_count, 12.25);
}

TEST(NetWireTest, AnswerResponseRoundTrips) {
  AnswerResponse resp;
  resp.outcome = SampleOutcome();
  WireQueryResult result;
  result.query_name = "association_count";
  result.sensitivity = 2500.0;
  result.noise_stddev = 812.5;
  result.truth = {2500.0};
  result.noisy = {2481.5};
  result.mean_rer = 0.0074;
  result.mae = 18.5;
  result.rmse = 18.5;
  resp.results.push_back(result);
  const AnswerResponse got = DecodeAnswerResponse(Encode(resp));
  ASSERT_EQ(got.results.size(), 1u);
  EXPECT_EQ(got.results[0].query_name, "association_count");
  EXPECT_EQ(got.results[0].truth, result.truth);
  EXPECT_DOUBLE_EQ(got.results[0].rmse, 18.5);
}

TEST(NetWireTest, StatsResponseRoundTripsEveryField) {
  StatsResponse stats;
  stats.registry_hits = 1;
  stats.registry_misses = 2;
  stats.registry_evictions = 3;
  stats.registry_snapshot_adoptions = 4;
  stats.registry_size = 5;
  stats.registry_capacity = 6;
  stats.catalog_datasets = 7;
  stats.broker_tenants = 8;
  stats.wal_enabled = 1;
  stats.failed_closed = 1;
  stats.wal_appends = 9;
  stats.wal_failures = 10;
  stats.fail_closed_rejections = 11;
  stats.dataset_denials = 12;
  stats.connections_accepted = 13;
  stats.connections_open = 14;
  stats.requests_enqueued = 15;
  stats.requests_completed = 16;
  stats.shed_queue_full = 17;
  stats.shed_tenant_inflight = 18;
  stats.protocol_errors = 19;
  stats.queue_depth = 20;
  stats.queue_capacity = 21;
  stats.queue_high_watermark = 22;
  stats.workers = 23;
  stats.io_threads = 24;
  stats.noise_streams = 1;
  stats.rng_mutex_acquisitions = 25;
  stats.partial_writes = 26;
  const StatsResponse got = DecodeStatsResponse(Encode(stats));
  EXPECT_EQ(got.registry_hits, 1u);
  EXPECT_EQ(got.registry_capacity, 6u);
  EXPECT_EQ(got.broker_tenants, 8u);
  EXPECT_EQ(got.wal_enabled, 1);
  EXPECT_EQ(got.fail_closed_rejections, 11u);
  EXPECT_EQ(got.shed_tenant_inflight, 18u);
  EXPECT_EQ(got.queue_high_watermark, 22u);
  EXPECT_EQ(got.workers, 23u);
  EXPECT_EQ(got.io_threads, 24u);
  EXPECT_EQ(got.noise_streams, 1);
  EXPECT_EQ(got.rng_mutex_acquisitions, 25u);
  EXPECT_EQ(got.partial_writes, 26u);
}

TEST(NetWireTest, OverloadedAndErrorRoundTrip) {
  const OverloadedResponse over = DecodeOverloaded(
      Encode(OverloadedResponse{"job queue full (depth 64)"}));
  EXPECT_EQ(over.reason, "job queue full (depth 64)");
  const ErrorResponse err = DecodeError(
      Encode(ErrorResponse{ErrorCode::kNotFound, "unknown tenant 'x'"}));
  EXPECT_EQ(err.code, ErrorCode::kNotFound);
  EXPECT_EQ(err.message, "unknown tenant 'x'");
}

// ---------- hostile decode ----------

TEST(NetHostileTest, EmptyPayloadAndUnknownKindThrow) {
  EXPECT_THROW((void)PeekKind(""), NetProtocolError);
  EXPECT_THROW((void)PeekKind(std::string(1, '\x63')), NetProtocolError);
  EXPECT_THROW((void)PeekKind(std::string(1, '\0')), NetProtocolError);
}

TEST(NetHostileTest, WrongKindForDecoderThrows) {
  const std::string serve = Encode(SampleServeRequest());
  EXPECT_THROW((void)DecodeSweepRequest(serve), NetProtocolError);
  EXPECT_THROW((void)DecodeServeResponse(serve), NetProtocolError);
  EXPECT_THROW(DecodeStatsRequest(serve), NetProtocolError);
}

// Every proper prefix of a valid message is a truncation attack; the decoder
// must throw, not read out of bounds (ASan-clean by CI construction).
TEST(NetHostileTest, EveryTruncationOfEveryMessageThrows) {
  const std::string payloads[] = {
      Encode(SampleServeRequest()),
      Encode(SampleOutcome()),
      Encode(DrilldownResponse{SampleOutcome(),
                               {WireDrillEntry{1, 2, 3, 4.0, 5.0}}}),
      Encode(ErrorResponse{ErrorCode::kInternal, "boom"}),
  };
  const auto decode_any = [](const std::string& payload) {
    switch (PeekKind(payload)) {
      case MsgKind::kServeRequest:
        (void)DecodeServeRequest(payload);
        break;
      case MsgKind::kServeResponse:
        (void)DecodeServeResponse(payload);
        break;
      case MsgKind::kDrilldownResponse:
        (void)DecodeDrilldownResponse(payload);
        break;
      case MsgKind::kError:
        (void)DecodeError(payload);
        break;
      default:
        break;
    }
  };
  for (const std::string& payload : payloads) {
    for (std::size_t keep = 1; keep < payload.size(); ++keep) {
      EXPECT_THROW(decode_any(payload.substr(0, keep)), NetProtocolError)
          << "kind " << static_cast<int>(payload[0]) << " truncated to "
          << keep << " of " << payload.size() << " bytes";
    }
  }
}

TEST(NetHostileTest, TrailingGarbageThrows) {
  std::string payload = Encode(SampleServeRequest());
  payload.push_back('\0');
  EXPECT_THROW((void)DecodeServeRequest(payload), NetProtocolError);
}

// A count field claiming more elements than the remaining bytes could hold
// must be rejected BEFORE the reserve — the allocation-bomb defense.
TEST(NetHostileTest, InflatedCountIsRejectedBeforeAllocation) {
  SweepRequest req;
  req.tenant = "a";
  req.dataset = "b";
  req.budgets.push_back(WireBudget{});
  std::string payload = Encode(req);
  // The budget count is the u32 right before the 25-byte budget body.
  const std::size_t count_at = payload.size() - 25 - 4;
  const std::uint32_t huge = 0x40000000u;
  std::memcpy(payload.data() + count_at, &huge, sizeof(huge));
  EXPECT_THROW((void)DecodeSweepRequest(payload), NetProtocolError);
}

TEST(NetHostileTest, InflatedStringLengthThrows) {
  ServeRequest req = SampleServeRequest();
  std::string payload = Encode(req);
  // The tenant length is the first u32 after the kind byte.
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(payload.data() + 1, &huge, sizeof(huge));
  EXPECT_THROW((void)DecodeServeRequest(payload), NetProtocolError);
}

TEST(NetHostileTest, OutOfRangeEnumsThrow) {
  ServeRequest req = SampleServeRequest();
  req.budget.noise = 200;  // past kGeometric
  EXPECT_THROW((void)DecodeServeRequest(Encode(req)), NetProtocolError);

  DrilldownRequest drill;
  drill.tenant = "a";
  drill.dataset = "b";
  drill.side = 2;  // not a graph::Side
  EXPECT_THROW((void)DecodeDrilldownRequest(Encode(drill)), NetProtocolError);

  ServeOutcome outcome = SampleOutcome();
  outcome.accounting = 99;  // not an AccountingPolicy
  EXPECT_THROW((void)DecodeServeResponse(Encode(outcome)), NetProtocolError);
}

TEST(NetHostileTest, NonBooleanGrantedByteThrows) {
  std::string payload = Encode(SampleOutcome());
  payload[1] = '\x02';  // granted must be 0 or 1
  EXPECT_THROW((void)DecodeServeResponse(payload), NetProtocolError);
}

TEST(NetHostileTest, ErrorCodeRangeIsValidated) {
  std::string payload = Encode(ErrorResponse{ErrorCode::kInternal, "x"});
  payload[1] = '\x00';  // 0 is not a valid ErrorCode
  EXPECT_THROW((void)DecodeError(payload), NetProtocolError);
}

}  // namespace
}  // namespace gdp::net::wire
