#include "graph/projection.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::graph {
namespace {

using gdp::common::Rng;

TEST(TruncateDegreesTest, RejectsZeroCap) {
  const BipartiteGraph g(2, 2, {{0, 0}});
  Rng rng(1);
  EXPECT_THROW((void)TruncateDegrees(g, Side::kLeft, 0, rng),
               std::invalid_argument);
}

TEST(TruncateDegreesTest, NoopWhenCapAboveMaxDegree) {
  Rng grng(2);
  const BipartiteGraph g = GenerateUniformRandom(50, 50, 200, grng);
  Rng rng(3);
  const ProjectionResult r =
      TruncateDegrees(g, Side::kLeft, g.MaxDegree(Side::kLeft) + 1, rng);
  EXPECT_EQ(r.edges_dropped, 0u);
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
}

TEST(TruncateDegreesTest, EnforcesCapOnTruncatedSide) {
  Rng grng(5);
  gdp::graph::DblpLikeParams p;
  p.num_left = 500;
  p.num_right = 500;
  p.num_edges = 5000;
  const BipartiteGraph g = GenerateDblpLike(p, grng);
  Rng rng(7);
  constexpr EdgeCount kCap = 5;
  const ProjectionResult r = TruncateDegrees(g, Side::kLeft, kCap, rng);
  EXPECT_LE(r.graph.MaxDegree(Side::kLeft), kCap);
  EXPECT_EQ(r.graph.num_edges() + r.edges_dropped, g.num_edges());
}

TEST(TruncateDegreesTest, DropsExactlyOverflowPerNode) {
  // One node of degree 7 capped at 3 drops exactly 4 edges.
  std::vector<Edge> edges;
  for (NodeIndex u = 0; u < 7; ++u) {
    edges.push_back({0, u});
  }
  const BipartiteGraph g(1, 7, std::move(edges));
  Rng rng(9);
  const ProjectionResult r = TruncateDegrees(g, Side::kLeft, 3, rng);
  EXPECT_EQ(r.edges_dropped, 4u);
  EXPECT_EQ(r.graph.Degree(Side::kLeft, 0), 3u);
}

TEST(TruncateDegreesTest, SurvivorsAreSubsetOfOriginal) {
  Rng grng(11);
  const BipartiteGraph g = GenerateUniformRandom(30, 30, 300, grng);
  Rng rng(13);
  const ProjectionResult r = TruncateDegrees(g, Side::kRight, 4, rng);
  auto original = g.EdgeList();
  std::sort(original.begin(), original.end());
  for (const Edge& e : r.graph.EdgeList()) {
    EXPECT_TRUE(std::binary_search(original.begin(), original.end(), e));
  }
}

TEST(TruncateDegreesBothSidesTest, BothCapsHold) {
  Rng grng(17);
  gdp::graph::DblpLikeParams p;
  p.num_left = 300;
  p.num_right = 300;
  p.num_edges = 4000;
  const BipartiteGraph g = GenerateDblpLike(p, grng);
  Rng rng(19);
  constexpr EdgeCount kCap = 6;
  const ProjectionResult r = TruncateDegreesBothSides(g, kCap, rng);
  EXPECT_LE(r.graph.MaxDegree(Side::kLeft), kCap);
  EXPECT_LE(r.graph.MaxDegree(Side::kRight), kCap);
  EXPECT_EQ(r.graph.num_edges() + r.edges_dropped, g.num_edges());
}

TEST(TruncateDegreesTest, BoundsGroupSensitivityWorstCase) {
  // The point of the projection: after capping, a group of m nodes has
  // incident weight at most m * cap, independent of the data.
  Rng grng(23);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 400;
  p.num_edges = 6000;
  const BipartiteGraph g = GenerateDblpLike(p, grng);
  Rng rng(29);
  constexpr EdgeCount kCap = 4;
  const ProjectionResult r = TruncateDegreesBothSides(g, kCap, rng);
  // Any 10-node group is bounded by 40 after projection.
  std::vector<NodeIndex> group;
  for (NodeIndex v = 0; v < 10; ++v) {
    group.push_back(v);
  }
  EdgeCount weight = 0;
  for (const NodeIndex v : group) {
    weight += r.graph.Degree(Side::kLeft, v);
  }
  EXPECT_LE(weight, 10 * kCap);
}

TEST(TruncateDegreesTest, DeterministicUnderSeed) {
  Rng grng(31);
  const BipartiteGraph g = GenerateUniformRandom(40, 40, 600, grng);
  Rng r1(33);
  Rng r2(33);
  const auto a = TruncateDegrees(g, Side::kLeft, 3, r1);
  const auto b = TruncateDegrees(g, Side::kLeft, 3, r2);
  EXPECT_EQ(a.graph.EdgeList(), b.graph.EdgeList());
}

}  // namespace
}  // namespace gdp::graph
