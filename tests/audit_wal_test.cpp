// AuditWal unit coverage: record codec, frame/CRC replay with torn-tail
// repair, seq/epoch assignment across reopens, fault injection through
// FaultyStorage (transient retry, permanent fail-closed, short writes,
// simulated crashes), and the POSIX FileStorage round trip.
#include "serve/audit_wal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/retry.hpp"
#include "dp/privacy_accountant.hpp"

namespace gdp::serve {
namespace {

using gdp::common::BackoffOptions;
using gdp::dp::AccountingPolicy;
using gdp::dp::MechanismEvent;

WalRecord SampleCharge(const std::string& tenant = "alice") {
  return WalRecord::Charge(tenant, "dblp",
                           MechanismEvent::Gaussian(0.9, 1e-6, 3.0), 1.35,
                           2e-6, "release[0]: phase2 noise");
}

// Frame a payload the way the WAL does: [u32 len][u32 crc][payload], LE.
std::string Frame(const std::string& payload) {
  std::string frame;
  auto put_u32 = [&frame](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(static_cast<std::uint32_t>(payload.size()));
  put_u32(gdp::common::Crc32(payload));
  frame.append(payload);
  return frame;
}

constexpr std::string_view kMagic = "GDPWAL01";

// ---------- codec ----------

TEST(WalRecordCodecTest, RoundTripsEveryFieldOfEveryKind) {
  WalRecord open = WalRecord::TenantOpen(
      "alice", "dblp", "fp123", 50.0, 0.4, AccountingPolicy::kRdp,
      MechanismEvent::PureEps(0.45), 0.45, 0.0, "phase1: EM specialization");
  open.seq = 7;
  open.epoch = 2;
  WalRecord charge = SampleCharge();
  charge.seq = 8;
  charge.epoch = 2;
  charge.event.count = 3;
  charge.event.parallel_width = 2;
  WalRecord retired = WalRecord::DatasetRetired("dblp", "cap tripped");
  retired.seq = 9;
  retired.epoch = 3;

  for (const WalRecord& record : {open, charge, retired}) {
    const WalRecord decoded = DecodeWalRecord(EncodeWalRecord(record));
    EXPECT_EQ(decoded.kind, record.kind);
    EXPECT_EQ(decoded.seq, record.seq);
    EXPECT_EQ(decoded.epoch, record.epoch);
    EXPECT_EQ(decoded.tenant, record.tenant);
    EXPECT_EQ(decoded.dataset, record.dataset);
    EXPECT_EQ(decoded.fingerprint, record.fingerprint);
    EXPECT_DOUBLE_EQ(decoded.epsilon_cap, record.epsilon_cap);
    EXPECT_DOUBLE_EQ(decoded.delta_cap, record.delta_cap);
    EXPECT_EQ(decoded.accounting, record.accounting);
    EXPECT_EQ(decoded.event.kind, record.event.kind);
    EXPECT_DOUBLE_EQ(decoded.event.epsilon, record.event.epsilon);
    EXPECT_DOUBLE_EQ(decoded.event.delta, record.event.delta);
    EXPECT_DOUBLE_EQ(decoded.event.noise_multiplier,
                     record.event.noise_multiplier);
    EXPECT_EQ(decoded.event.count, record.event.count);
    EXPECT_EQ(decoded.event.parallel_width, record.event.parallel_width);
    EXPECT_DOUBLE_EQ(decoded.accounted_epsilon, record.accounted_epsilon);
    EXPECT_DOUBLE_EQ(decoded.accounted_delta, record.accounted_delta);
    EXPECT_EQ(decoded.label, record.label);
  }
}

TEST(WalRecordCodecTest, UndecodablePayloadThrowsIoError) {
  EXPECT_THROW((void)DecodeWalRecord(""), gdp::common::IoError);
  EXPECT_THROW((void)DecodeWalRecord("garbage bytes"), gdp::common::IoError);
  // A truncated-but-started payload is version skew / a writer bug too.
  const std::string good = EncodeWalRecord(SampleCharge());
  EXPECT_THROW((void)DecodeWalRecord(good.substr(0, good.size() / 2)),
               gdp::common::IoError);
}

// ---------- replay ----------

TEST(WalReplayTest, EmptyImageIsAnEmptyLog) {
  const WalReplayResult result = AuditWal::Replay("");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_FALSE(result.torn_tail());
  EXPECT_FALSE(result.sequence_gap);
}

TEST(WalReplayTest, WrongMagicIsNotAWal) {
  EXPECT_THROW((void)AuditWal::Replay("NOTAWAL0 more bytes"),
               gdp::common::IoError);
}

TEST(WalReplayTest, ShortNonMagicPrefixIsAllTornTail) {
  const WalReplayResult result = AuditWal::Replay("GDP");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.truncated_bytes, 3u);
  EXPECT_TRUE(result.torn_tail());
}

TEST(WalReplayTest, TornTailIsReportedAndBoundariesExposed) {
  WalRecord a = SampleCharge("alice");
  a.seq = 0;
  WalRecord b = SampleCharge("bob");
  b.seq = 1;
  std::string image(kMagic);
  image += Frame(EncodeWalRecord(a));
  const std::uint64_t after_a = image.size();
  image += Frame(EncodeWalRecord(b));
  const std::uint64_t after_b = image.size();
  // A crash mid-append leaves half of a third frame behind.
  WalRecord c = SampleCharge("carol");
  c.seq = 2;
  const std::string torn = Frame(EncodeWalRecord(c));
  image += torn.substr(0, torn.size() / 2);

  const WalReplayResult result = AuditWal::Replay(image);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].tenant, "alice");
  EXPECT_EQ(result.records[1].tenant, "bob");
  EXPECT_EQ(result.valid_bytes, after_b);
  EXPECT_EQ(result.truncated_bytes, torn.size() - torn.size() / 2);
  EXPECT_TRUE(result.torn_tail());
  ASSERT_EQ(result.record_end_offsets.size(), 2u);
  EXPECT_EQ(result.record_end_offsets[0], after_a);
  EXPECT_EQ(result.record_end_offsets[1], after_b);
  EXPECT_FALSE(result.sequence_gap);
  EXPECT_EQ(result.next_seq, 2u);
}

TEST(WalReplayTest, CorruptByteDropsEverythingFromThatFrameOn) {
  WalRecord a = SampleCharge("alice");
  a.seq = 0;
  WalRecord b = SampleCharge("bob");
  b.seq = 1;
  std::string image(kMagic);
  image += Frame(EncodeWalRecord(a));
  const std::uint64_t after_a = image.size();
  image += Frame(EncodeWalRecord(b));
  // Flip one payload byte inside b's frame: its CRC no longer checks out.
  image[after_a + 8 + 4] = static_cast<char>(image[after_a + 8 + 4] ^ 0x01);
  const WalReplayResult result = AuditWal::Replay(image);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].tenant, "alice");
  EXPECT_EQ(result.valid_bytes, after_a);
  EXPECT_TRUE(result.torn_tail());
}

TEST(WalReplayTest, SequenceGapIsFlagged) {
  WalRecord a = SampleCharge("alice");
  a.seq = 0;
  WalRecord c = SampleCharge("carol");
  c.seq = 2;  // record 1 is missing — torn writes cannot produce this
  std::string image(kMagic);
  image += Frame(EncodeWalRecord(a));
  image += Frame(EncodeWalRecord(c));
  const WalReplayResult result = AuditWal::Replay(image);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_TRUE(result.sequence_gap);
  EXPECT_EQ(result.next_seq, 3u);
}

// ---------- append / reopen ----------

TEST(AuditWalTest, AppendAssignsSeqAndEpochAndIsReplayable) {
  AuditWal wal(std::make_unique<MemoryStorage>());
  EXPECT_EQ(wal.epoch(), 0u);
  EXPECT_EQ(wal.Append(SampleCharge("alice")), 0u);
  EXPECT_EQ(wal.Append(SampleCharge("bob")), 1u);
  EXPECT_EQ(wal.next_seq(), 2u);
  const WalReplayResult replay = AuditWal::Replay(wal.storage().ReadAll());
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].seq, 0u);
  EXPECT_EQ(replay.records[0].epoch, 0u);
  EXPECT_EQ(replay.records[1].seq, 1u);
  EXPECT_FALSE(replay.sequence_gap);
}

TEST(AuditWalTest, ReopenContinuesSeqAndBumpsEpoch) {
  std::string bytes;
  {
    AuditWal wal(std::make_unique<MemoryStorage>());
    (void)wal.Append(SampleCharge("alice"));
    (void)wal.Append(SampleCharge("bob"));
    bytes = wal.storage().ReadAll();
  }
  AuditWal reopened(std::make_unique<MemoryStorage>(bytes));
  EXPECT_EQ(reopened.recovered().records.size(), 2u);
  EXPECT_EQ(reopened.next_seq(), 2u);
  EXPECT_EQ(reopened.epoch(), 1u);
  EXPECT_EQ(reopened.Append(SampleCharge("carol")), 2u);
  const WalReplayResult replay = AuditWal::Replay(reopened.storage().ReadAll());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[2].epoch, 1u);
  EXPECT_FALSE(replay.sequence_gap);
}

TEST(AuditWalTest, OpenTruncatesTornTailSoItNeverResurfaces) {
  std::string bytes;
  {
    AuditWal wal(std::make_unique<MemoryStorage>());
    (void)wal.Append(SampleCharge("alice"));
    bytes = wal.storage().ReadAll();
  }
  const std::uint64_t intact = bytes.size();
  bytes += "half a frame";  // a crash's leftovers
  AuditWal reopened(std::make_unique<MemoryStorage>(bytes));
  EXPECT_TRUE(reopened.recovered().torn_tail());
  EXPECT_EQ(reopened.storage().size(), intact);
  // The next append lands cleanly where the repaired log ends.
  (void)reopened.Append(SampleCharge("bob"));
  EXPECT_EQ(AuditWal::Replay(reopened.storage().ReadAll()).records.size(), 2u);
}

// ---------- fault injection ----------

// Bytes of a one-record WAL, used to seed FaultyStorage tests with a
// non-empty file (so the adopting ctor performs no counted writes and the
// first Append is durable op 0).
std::string OneRecordImage() {
  AuditWal wal(std::make_unique<MemoryStorage>());
  (void)wal.Append(SampleCharge("seed"));
  return wal.storage().ReadAll();
}

TEST(AuditWalTest, TransientAppendErrorIsRetriedWithBackoff) {
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kTransientError, /*fail_at_op=*/0);
  FaultyStorage* storage = faulty.get();
  std::vector<std::chrono::milliseconds> sleeps;
  AuditWal wal(std::move(faulty), BackoffOptions{},
               [&sleeps](std::chrono::milliseconds d) { sleeps.push_back(d); });
  EXPECT_EQ(wal.Append(SampleCharge("alice")), 1u);
  EXPECT_EQ(sleeps.size(), 1u) << "one transient failure, one backoff sleep";
  const WalReplayResult replay = AuditWal::Replay(storage->inner().ReadAll());
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_FALSE(replay.torn_tail());
  EXPECT_FALSE(replay.sequence_gap);
}

TEST(AuditWalTest, TransientSyncErrorIsRetriedToo) {
  // Op 0 is the frame's Append, op 1 its Sync: fail the fsync once.
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kTransientError, /*fail_at_op=*/1);
  FaultyStorage* storage = faulty.get();
  std::vector<std::chrono::milliseconds> sleeps;
  AuditWal wal(std::move(faulty), BackoffOptions{},
               [&sleeps](std::chrono::milliseconds d) { sleeps.push_back(d); });
  EXPECT_EQ(wal.Append(SampleCharge("alice")), 1u);
  EXPECT_EQ(sleeps.size(), 1u);
  // The retry truncated back to base first: exactly one copy of the frame.
  const WalReplayResult replay = AuditWal::Replay(storage->inner().ReadAll());
  EXPECT_EQ(replay.records.size(), 2u);
  EXPECT_FALSE(replay.torn_tail());
}

TEST(AuditWalTest, ExhaustedRetriesFailClosedWithoutTornFrame) {
  BackoffOptions retry;
  retry.max_attempts = 3;
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kTransientError, /*fail_at_op=*/0,
      /*fail_ops=*/100);
  FaultyStorage* storage = faulty.get();
  std::vector<std::chrono::milliseconds> sleeps;
  AuditWal wal(std::move(faulty), retry,
               [&sleeps](std::chrono::milliseconds d) { sleeps.push_back(d); });
  EXPECT_THROW((void)wal.Append(SampleCharge("alice")),
               gdp::common::DurabilityError);
  EXPECT_EQ(sleeps.size(), 2u) << "3 attempts => 2 sleeps";
  // Nothing torn, nothing half-appended: the log still replays to 1 record.
  const WalReplayResult replay = AuditWal::Replay(storage->inner().ReadAll());
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_FALSE(replay.torn_tail());
}

TEST(AuditWalTest, PermanentErrorFailsClosedWithoutBurningRetries) {
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kPermanentError, /*fail_at_op=*/0);
  std::vector<std::chrono::milliseconds> sleeps;
  AuditWal wal(std::move(faulty), BackoffOptions{},
               [&sleeps](std::chrono::milliseconds d) { sleeps.push_back(d); });
  EXPECT_THROW((void)wal.Append(SampleCharge("alice")),
               gdp::common::DurabilityError);
  EXPECT_TRUE(sleeps.empty()) << "a permanent error must not be retried";
}

TEST(AuditWalTest, ShortWriteThenErrorLeavesARepairableTail) {
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kShortWriteThenError, /*fail_at_op=*/0);
  FaultyStorage* storage = faulty.get();
  AuditWal wal(std::move(faulty), BackoffOptions{},
               [](std::chrono::milliseconds) {});
  EXPECT_THROW((void)wal.Append(SampleCharge("alice")),
               gdp::common::DurabilityError);
  // The half-frame is on disk, but replay truncates it and a reopen repairs.
  const std::string bytes = storage->inner().ReadAll();
  const WalReplayResult replay = AuditWal::Replay(bytes);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail());
  AuditWal reopened(std::make_unique<MemoryStorage>(bytes));
  EXPECT_EQ(reopened.recovered().records.size(), 1u);
  EXPECT_EQ(reopened.Append(SampleCharge("bob")), 1u);
}

TEST(AuditWalTest, SimulatedCrashPropagatesAsACrashNotAnError) {
  // kCrashShortWrite models the process dying: the retry/fail-closed
  // machinery must NOT swallow it into a DurabilityError.
  auto faulty = std::make_unique<FaultyStorage>(
      std::make_unique<MemoryStorage>(OneRecordImage()),
      FaultyStorage::FaultMode::kCrashShortWrite, /*fail_at_op=*/0);
  FaultyStorage* storage = faulty.get();
  AuditWal wal(std::move(faulty), BackoffOptions{},
               [](std::chrono::milliseconds) {});
  EXPECT_THROW((void)wal.Append(SampleCharge("alice")), SimulatedCrash);
  // The "next process" recovers the pre-crash history.
  const WalReplayResult replay = AuditWal::Replay(storage->inner().ReadAll());
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail());
}

// ---------- FileStorage ----------

TEST(FileStorageTest, RoundTripsThroughARealFile) {
  const std::string path = ::testing::TempDir() + "/audit_wal_test.wal";
  std::remove(path.c_str());
  {
    AuditWal wal(std::make_unique<FileStorage>(path));
    (void)wal.Append(SampleCharge("alice"));
    (void)wal.Append(SampleCharge("bob"));
  }
  {
    AuditWal reopened(std::make_unique<FileStorage>(path));
    EXPECT_EQ(reopened.recovered().records.size(), 2u);
    EXPECT_EQ(reopened.next_seq(), 2u);
    EXPECT_EQ(reopened.epoch(), 1u);
    (void)reopened.Append(SampleCharge("carol"));
  }
  FileStorage verify(path);
  const WalReplayResult replay = AuditWal::Replay(verify.ReadAll());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[2].tenant, "carol");
  EXPECT_FALSE(replay.sequence_gap);
  std::remove(path.c_str());
}

TEST(FileStorageTest, TruncateDiscardsSuffix) {
  const std::string path = ::testing::TempDir() + "/file_storage_trunc.wal";
  std::remove(path.c_str());
  FileStorage storage(path);
  storage.Append("0123456789");
  storage.Sync();
  EXPECT_EQ(storage.size(), 10u);
  storage.Truncate(4);
  EXPECT_EQ(storage.size(), 4u);
  EXPECT_EQ(storage.ReadAll(), "0123");
  storage.Append("xy");
  EXPECT_EQ(storage.ReadAll(), "0123xy");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdp::serve
