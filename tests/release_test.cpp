#include "core/release.hpp"

#include <gtest/gtest.h>

namespace gdp::core {
namespace {

LevelRelease MakeLevel(int level, double truth, double noisy) {
  LevelRelease lr;
  lr.level = level;
  lr.true_total = truth;
  lr.noisy_total = noisy;
  lr.sensitivity = 10.0;
  lr.noise_stddev = 2.0;
  return lr;
}

TEST(LevelReleaseTest, TotalRer) {
  const LevelRelease lr = MakeLevel(0, 100.0, 93.0);
  EXPECT_NEAR(lr.TotalRer(), 0.07, 1e-12);
}

TEST(MultiLevelReleaseTest, ValidConstruction) {
  std::vector<LevelRelease> levels{MakeLevel(0, 10, 11), MakeLevel(1, 10, 9),
                                   MakeLevel(2, 10, 14)};
  const MultiLevelRelease r(std::move(levels));
  EXPECT_EQ(r.depth(), 2);
  EXPECT_EQ(r.num_levels(), 3);
  EXPECT_DOUBLE_EQ(r.level(2).noisy_total, 14.0);
}

TEST(MultiLevelReleaseTest, RejectsEmpty) {
  EXPECT_THROW(MultiLevelRelease(std::vector<LevelRelease>{}),
               std::invalid_argument);
}

TEST(MultiLevelReleaseTest, RejectsNonAscendingLevels) {
  std::vector<LevelRelease> levels{MakeLevel(0, 1, 1), MakeLevel(2, 1, 1)};
  EXPECT_THROW(MultiLevelRelease(std::move(levels)), std::invalid_argument);
}

TEST(MultiLevelReleaseTest, RejectsMismatchedGroupVectors) {
  LevelRelease bad = MakeLevel(0, 1, 1);
  bad.true_group_counts = {1.0, 2.0};
  bad.noisy_group_counts = {1.0};
  std::vector<LevelRelease> levels;
  levels.push_back(std::move(bad));
  EXPECT_THROW(MultiLevelRelease(std::move(levels)), std::invalid_argument);
}

TEST(MultiLevelReleaseTest, LevelAccessorBounds) {
  std::vector<LevelRelease> levels{MakeLevel(0, 1, 1), MakeLevel(1, 1, 1)};
  const MultiLevelRelease r(std::move(levels));
  EXPECT_THROW((void)r.level(-1), std::out_of_range);
  EXPECT_THROW((void)r.level(2), std::out_of_range);
}

TEST(MultiLevelReleaseTest, StripTruthZeroesTrueFields) {
  LevelRelease lr = MakeLevel(0, 100.0, 97.0);
  lr.true_group_counts = {40.0, 60.0};
  lr.noisy_group_counts = {42.0, 58.0};
  std::vector<LevelRelease> levels;
  levels.push_back(std::move(lr));
  const MultiLevelRelease r(std::move(levels));
  const MultiLevelRelease pub = r.StripTruth();
  EXPECT_EQ(pub.level(0).true_total, 0.0);
  EXPECT_EQ(pub.level(0).true_group_counts,
            (std::vector<double>{0.0, 0.0}));
  // Noisy values untouched.
  EXPECT_DOUBLE_EQ(pub.level(0).noisy_total, 97.0);
  EXPECT_EQ(pub.level(0).noisy_group_counts,
            (std::vector<double>{42.0, 58.0}));
}

TEST(MultiLevelReleaseTest, SummaryMentionsLevels) {
  std::vector<LevelRelease> levels{MakeLevel(0, 100, 99), MakeLevel(1, 100, 90)};
  const MultiLevelRelease r(std::move(levels));
  const std::string s = r.Summary();
  EXPECT_NE(s.find("L0"), std::string::npos);
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("RER"), std::string::npos);
}

}  // namespace
}  // namespace gdp::core
