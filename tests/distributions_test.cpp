#include "dp/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;
using gdp::common::RunningStats;

constexpr int kSamples = 200000;

TEST(SampleLaplaceTest, RejectsBadScale) {
  Rng rng(1);
  EXPECT_THROW((void)SampleLaplace(rng, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SampleLaplace(rng, -1.0), std::invalid_argument);
  EXPECT_THROW((void)SampleLaplace(rng, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(SampleLaplaceTest, MeanZeroVarianceTwoBSquared) {
  Rng rng(2);
  const double b = 3.0;
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(SampleLaplace(rng, b));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(s.variance(), 2.0 * b * b, 0.5);
}

TEST(SampleLaplaceTest, MedianAbsoluteDeviationMatchesTheory) {
  // For Laplace(b), P(|X| <= b ln 2) = 1/2.
  Rng rng(3);
  const double b = 2.0;
  int within = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(SampleLaplace(rng, b)) <= b * std::log(2.0)) {
      ++within;
    }
  }
  EXPECT_NEAR(static_cast<double>(within) / kSamples, 0.5, 0.01);
}

TEST(SampleGaussianTest, RejectsBadStddev) {
  Rng rng(1);
  EXPECT_THROW((void)SampleGaussian(rng, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SampleGaussian(rng, -2.0), std::invalid_argument);
}

TEST(SampleGaussianTest, MomentsMatch) {
  Rng rng(4);
  const double sigma = 5.0;
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(SampleGaussian(rng, sigma));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(s.stddev(), sigma, 0.1);
}

TEST(SampleGaussianTest, EmpiricalCdfMatchesNormal) {
  Rng rng(5);
  int below_one_sigma = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleGaussian(rng, 1.0) < 1.0) {
      ++below_one_sigma;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_one_sigma) / kSamples,
              gdp::common::NormalCdf(1.0), 0.01);
}

TEST(SampleGeometricTest, RejectsBadP) {
  Rng rng(1);
  EXPECT_THROW((void)SampleGeometric(rng, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SampleGeometric(rng, 1.5), std::invalid_argument);
}

TEST(SampleGeometricTest, PEqualsOneAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleGeometric(rng, 1.0), 0u);
  }
}

TEST(SampleGeometricTest, MeanMatchesTheory) {
  Rng rng(7);
  const double p = 0.25;
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(static_cast<double>(SampleGeometric(rng, p)));
  }
  EXPECT_NEAR(s.mean(), (1.0 - p) / p, 0.05);
}

TEST(SampleTwoSidedGeometricTest, SymmetricAroundZero) {
  Rng rng(8);
  const double scale = 4.0;
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(static_cast<double>(SampleTwoSidedGeometric(rng, scale)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
}

TEST(SampleTwoSidedGeometricTest, VarianceMatchesTheory) {
  Rng rng(9);
  const double scale = 3.0;
  const double a = std::exp(-1.0 / scale);
  const double expected_var = 2.0 * a / ((1.0 - a) * (1.0 - a));
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(static_cast<double>(SampleTwoSidedGeometric(rng, scale)));
  }
  EXPECT_NEAR(s.variance(), expected_var, expected_var * 0.05);
}

TEST(SampleTwoSidedGeometricTest, RejectsBadScale) {
  Rng rng(1);
  EXPECT_THROW((void)SampleTwoSidedGeometric(rng, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SampleTwoSidedGeometric(rng, -3.0), std::invalid_argument);
}

TEST(BernoulliExpMinusTest, ZeroAlwaysTrue) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BernoulliExpMinus(rng, 0.0));
  }
}

TEST(BernoulliExpMinusTest, RejectsNegative) {
  Rng rng(10);
  EXPECT_THROW((void)BernoulliExpMinus(rng, -0.1), std::invalid_argument);
}

TEST(BernoulliExpMinusTest, FrequencyMatchesExpSmallX) {
  Rng rng(11);
  const double x = 0.7;
  int accepted = 0;
  for (int i = 0; i < kSamples; ++i) {
    accepted += BernoulliExpMinus(rng, x) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / kSamples, std::exp(-x), 0.01);
}

TEST(BernoulliExpMinusTest, FrequencyMatchesExpLargeX) {
  Rng rng(12);
  const double x = 2.5;
  int accepted = 0;
  for (int i = 0; i < kSamples; ++i) {
    accepted += BernoulliExpMinus(rng, x) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / kSamples, std::exp(-x), 0.01);
}

TEST(SampleDiscreteGaussianTest, RejectsBadSigma) {
  Rng rng(1);
  EXPECT_THROW((void)SampleDiscreteGaussian(rng, 0.0), std::invalid_argument);
  EXPECT_THROW((void)SampleDiscreteGaussian(rng, -1.0), std::invalid_argument);
}

TEST(SampleDiscreteGaussianTest, MomentsApproachContinuous) {
  Rng rng(13);
  const double sigma = 6.0;
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(static_cast<double>(SampleDiscreteGaussian(rng, sigma)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.15);
  // Discrete Gaussian variance is within O(1) of sigma^2 for sigma >> 1.
  EXPECT_NEAR(s.stddev(), sigma, 0.2);
}

TEST(SampleDiscreteGaussianTest, SmallSigmaConcentratesOnZero) {
  Rng rng(14);
  int zeros = 0;
  for (int i = 0; i < 10000; ++i) {
    if (SampleDiscreteGaussian(rng, 0.2) == 0) {
      ++zeros;
    }
  }
  EXPECT_GT(zeros, 9900);  // mass overwhelmingly at 0 for sigma=0.2
}

TEST(SampleGumbelTest, MomentsMatchTheory) {
  Rng rng(15);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.Add(SampleGumbel(rng));
  }
  constexpr double kEulerMascheroni = 0.5772156649015329;
  constexpr double kGumbelVar = 1.6449340668482264;  // pi^2/6
  EXPECT_NEAR(s.mean(), kEulerMascheroni, 0.02);
  EXPECT_NEAR(s.variance(), kGumbelVar, 0.05);
}

}  // namespace
}  // namespace gdp::dp
