#include "dp/exponential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace gdp::dp {
namespace {

using gdp::common::Rng;

TEST(ExponentialMechanismTest, ExponentScale) {
  const ExponentialMechanism em(Epsilon(1.0), L1Sensitivity(2.0));
  EXPECT_DOUBLE_EQ(em.ExponentScale(), 0.25);
}

TEST(ExponentialMechanismTest, SelectRejectsEmpty) {
  const ExponentialMechanism em(Epsilon(1.0), L1Sensitivity(1.0));
  Rng rng(1);
  EXPECT_THROW((void)em.Select({}, rng), std::invalid_argument);
}

TEST(ExponentialMechanismTest, SelectRejectsNonFinite) {
  const ExponentialMechanism em(Epsilon(1.0), L1Sensitivity(1.0));
  Rng rng(1);
  const std::vector<double> utilities{
      0.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)em.Select(utilities, rng), std::invalid_argument);
}

TEST(ExponentialMechanismTest, SingleCandidateAlwaysSelected) {
  const ExponentialMechanism em(Epsilon(1.0), L1Sensitivity(1.0));
  Rng rng(2);
  const std::vector<double> utilities{3.0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(em.Select(utilities, rng), 0u);
  }
}

TEST(ExponentialMechanismTest, SelectionProbabilitiesSumToOne) {
  const ExponentialMechanism em(Epsilon(0.7), L1Sensitivity(1.0));
  const std::vector<double> utilities{0.0, 1.0, -2.0, 5.0};
  const auto probs = em.SelectionProbabilities(utilities);
  ASSERT_EQ(probs.size(), 4u);
  double total = 0.0;
  for (const double p : probs) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExponentialMechanismTest, ProbabilityRatiosFollowDefinition) {
  const double eps = 1.2;
  const ExponentialMechanism em(Epsilon(eps), L1Sensitivity(1.0));
  const std::vector<double> utilities{0.0, 2.0};
  const auto probs = em.SelectionProbabilities(utilities);
  // p1/p0 = exp(eps * (u1 - u0) / 2).
  EXPECT_NEAR(probs[1] / probs[0], std::exp(eps * 2.0 / 2.0), 1e-9);
}

TEST(ExponentialMechanismTest, ProbabilitiesStableUnderUtilityShift) {
  const ExponentialMechanism em(Epsilon(0.5), L1Sensitivity(1.0));
  const std::vector<double> a{0.0, 1.0, 2.0};
  const std::vector<double> b{1000.0, 1001.0, 1002.0};
  const auto pa = em.SelectionProbabilities(a);
  const auto pb = em.SelectionProbabilities(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], 1e-12);
  }
}

TEST(ExponentialMechanismTest, EmpiricalFrequenciesMatchProbabilities) {
  const ExponentialMechanism em(Epsilon(1.0), L1Sensitivity(1.0));
  const std::vector<double> utilities{0.0, 1.0, 3.0};
  const auto probs = em.SelectionProbabilities(utilities);
  Rng rng(42);
  constexpr int kN = 200000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[em.Select(utilities, rng)];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, probs[i], 0.01)
        << "candidate " << i;
  }
}

TEST(ExponentialMechanismTest, HighEpsilonConcentratesOnArgmax) {
  const ExponentialMechanism em(Epsilon(50.0), L1Sensitivity(1.0));
  const std::vector<double> utilities{0.0, 1.0, 10.0, 2.0};
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(em.Select(utilities, rng), 2u);
  }
}

TEST(ExponentialMechanismTest, TinyEpsilonNearUniform) {
  const ExponentialMechanism em(Epsilon(1e-6), L1Sensitivity(1.0));
  const std::vector<double> utilities{0.0, 100.0};
  const auto probs = em.SelectionProbabilities(utilities);
  EXPECT_NEAR(probs[0], 0.5, 0.001);
  EXPECT_NEAR(probs[1], 0.5, 0.001);
}

TEST(ExponentialMechanismTest, LargerSensitivityFlattensDistribution) {
  const std::vector<double> utilities{0.0, 4.0};
  const ExponentialMechanism sharp(Epsilon(1.0), L1Sensitivity(1.0));
  const ExponentialMechanism flat(Epsilon(1.0), L1Sensitivity(10.0));
  EXPECT_GT(sharp.SelectionProbabilities(utilities)[1],
            flat.SelectionProbabilities(utilities)[1]);
}

}  // namespace
}  // namespace gdp::dp
