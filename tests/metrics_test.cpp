#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gdp::core {
namespace {

TEST(RelativeErrorRateTest, MatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(RelativeErrorRate(105.0, 100.0), 0.05);
  EXPECT_DOUBLE_EQ(RelativeErrorRate(95.0, 100.0), 0.05);
  EXPECT_DOUBLE_EQ(RelativeErrorRate(100.0, 100.0), 0.0);
}

TEST(RelativeErrorRateTest, NegativeTruthUsesMagnitude) {
  EXPECT_DOUBLE_EQ(RelativeErrorRate(-90.0, -100.0), 0.1);
}

TEST(RelativeErrorRateTest, RejectsZeroTruth) {
  EXPECT_THROW((void)RelativeErrorRate(1.0, 0.0), std::invalid_argument);
}

TEST(MeanRelativeErrorRateTest, AveragesOverNonZeroTruths) {
  const std::vector<double> truth{100.0, 0.0, 50.0};
  const std::vector<double> noisy{110.0, 5.0, 45.0};
  // (0.1 + 0.1)/2 — the zero-truth entry is skipped.
  EXPECT_NEAR(MeanRelativeErrorRate(noisy, truth), 0.1, 1e-12);
}

TEST(MeanRelativeErrorRateTest, AllZeroTruthGivesZero) {
  const std::vector<double> truth{0.0, 0.0};
  const std::vector<double> noisy{1.0, 2.0};
  EXPECT_EQ(MeanRelativeErrorRate(noisy, truth), 0.0);
}

TEST(MeanRelativeErrorRateTest, RejectsMismatchedSizes) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)MeanRelativeErrorRate(a, b), std::invalid_argument);
  EXPECT_THROW((void)MeanRelativeErrorRate({}, {}), std::invalid_argument);
}

TEST(MeanAbsoluteErrorTest, Basic) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const std::vector<double> noisy{2.0, 0.0, 3.0};
  EXPECT_NEAR(MeanAbsoluteError(noisy, truth), 1.0, 1e-12);
}

TEST(RootMeanSquareErrorTest, Basic) {
  const std::vector<double> truth{0.0, 0.0};
  const std::vector<double> noisy{3.0, 4.0};
  EXPECT_NEAR(RootMeanSquareError(noisy, truth), std::sqrt(12.5), 1e-12);
}

TEST(RootMeanSquareErrorTest, ZeroWhenEqual) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(RootMeanSquareError(v, v), 0.0);
}

TEST(ErrorMetricsTest, RmseAtLeastMae) {
  const std::vector<double> truth{10.0, 20.0, 30.0, 40.0};
  const std::vector<double> noisy{11.0, 17.0, 33.0, 38.0};
  EXPECT_GE(RootMeanSquareError(noisy, truth) + 1e-12,
            MeanAbsoluteError(noisy, truth));
}

}  // namespace
}  // namespace gdp::core
