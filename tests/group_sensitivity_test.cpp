#include "core/group_sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::core {
namespace {

using gdp::graph::BipartiteGraph;
using gdp::graph::Side;
using gdp::hier::GroupInfo;
using gdp::hier::kNoParent;

TEST(CountSensitivityTest, TopLevelEqualsEdgeCount) {
  const BipartiteGraph g(3, 3, {{0, 0}, {1, 1}, {2, 2}, {0, 1}});
  const Partition top = Partition::TopLevel(3, 3);
  EXPECT_EQ(CountSensitivity(g, top), g.num_edges());
}

TEST(CountSensitivityTest, SingletonsEqualMaxDegree) {
  const BipartiteGraph g(3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}});
  const Partition singles = Partition::Singletons(3, 3);
  EXPECT_EQ(CountSensitivity(g, singles), 3u);  // left node 0 has degree 3
}

TEST(CountSensitivityTest, MidLevelIsMaxGroupWeight) {
  // Left nodes {0,1} in one group, {2} in another; right all together.
  const BipartiteGraph g(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
  const Partition p({0, 0, 1}, {2, 2},
                    {GroupInfo{Side::kLeft, 2, kNoParent},
                     GroupInfo{Side::kLeft, 1, kNoParent},
                     GroupInfo{Side::kRight, 2, kNoParent}});
  // Group 0 weight = 3, group 1 weight = 1, group 2 (right, all) = 4.
  EXPECT_EQ(CountSensitivity(g, p), 4u);
}

TEST(CountSensitivityTest, EdgelessGraphIsZero) {
  const BipartiteGraph g(4, 4, {});
  EXPECT_EQ(CountSensitivity(g, Partition::TopLevel(4, 4)), 0u);
}

TEST(CountSensitivitiesTest, OnePerLevelAndMonotone) {
  gdp::common::Rng rng(3);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 900, rng);
  gdp::hier::SpecializationConfig cfg;
  cfg.depth = 5;
  const gdp::hier::Specializer spec(cfg);
  gdp::common::Rng build_rng(4);
  const auto built = spec.BuildHierarchy(g, build_rng);
  const auto sens = CountSensitivities(g, built.hierarchy);
  ASSERT_EQ(sens.size(), 6u);
  for (std::size_t i = 1; i < sens.size(); ++i) {
    EXPECT_GE(sens[i], sens[i - 1]);
  }
}

TEST(VectorSensitivityTest, IsSqrtTwoTimesScalar) {
  const BipartiteGraph g(3, 3, {{0, 0}, {1, 1}, {2, 2}, {0, 1}});
  const Partition top = Partition::TopLevel(3, 3);
  const auto v = VectorSensitivity(g, top);
  EXPECT_NEAR(v.value(), std::sqrt(2.0) * 4.0, 1e-12);
}

TEST(VectorSensitivityTest, ThrowsOnZeroSensitivity) {
  const BipartiteGraph g(3, 3, {});
  EXPECT_THROW((void)VectorSensitivity(g, Partition::TopLevel(3, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gdp::core
