// Shape test for the paper's Figure 1 at reduced scale: the qualitative
// relationships the figure shows must hold in our reproduction.
//
//   (1) at fixed εg, RER grows with the protected group level;
//   (2) at fixed level, RER grows as εg shrinks;
//   (3) at εg ≈ 1, fine levels have small RER (< a few %) while the
//       coarsest shown level is an order of magnitude worse;
//   (4) at εg = 0.1, fine levels are still usable while coarse ones blow up.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/group_dp_engine.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

// 1/200-scale DBLP (fast enough for a unit test).
BipartiteGraph Dblp200th() {
  Rng rng(2026);
  const auto params = gdp::graph::DblpScaledParams(1.0 / 200.0);
  return GenerateDblpLike(params, rng);
}

// Mean RER of the count release at one level over `trials` noise draws.
double MeanRer(const BipartiteGraph& g, const hier::GroupHierarchy& h, int level,
               double eps, int trials, std::uint64_t seed) {
  core::ReleaseConfig cfg;
  cfg.epsilon_g = eps;
  cfg.include_group_counts = false;
  const core::GroupDpEngine engine(cfg);
  Rng rng(seed);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += engine.ReleaseLevel(g, h.level(level), level, rng).TotalRer();
  }
  return total / trials;
}

class Figure1ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new BipartiteGraph(Dblp200th());
    hier::SpecializationConfig cfg;
    cfg.depth = 9;
    cfg.arity = 4;
    cfg.epsilon_per_level = 0.0125;
    const hier::Specializer spec(cfg);
    Rng rng(7);
    hierarchy_ = new hier::GroupHierarchy(spec.BuildHierarchy(*graph_, rng).hierarchy);
  }
  static void TearDownTestSuite() {
    delete hierarchy_;
    hierarchy_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }
  static const BipartiteGraph& graph() { return *graph_; }
  static const hier::GroupHierarchy& hierarchy() { return *hierarchy_; }

 private:
  static BipartiteGraph* graph_;
  static hier::GroupHierarchy* hierarchy_;
};

BipartiteGraph* Figure1ShapeTest::graph_ = nullptr;
hier::GroupHierarchy* Figure1ShapeTest::hierarchy_ = nullptr;

TEST_F(Figure1ShapeTest, RerOrderedByLevelAtHighEpsilon) {
  constexpr int kTrials = 30;
  double prev = -1.0;
  for (const int level : {1, 4, 5, 6, 7}) {
    const double rer =
        MeanRer(graph(), hierarchy(), level, 0.999, kTrials, 50 + level);
    EXPECT_GT(rer, prev) << "level " << level;
    prev = rer;
  }
}

TEST_F(Figure1ShapeTest, RerGrowsAsEpsilonShrinks) {
  constexpr int kTrials = 30;
  const int level = 6;
  const double rer_loose = MeanRer(graph(), hierarchy(), level, 0.999, kTrials, 1);
  const double rer_mid = MeanRer(graph(), hierarchy(), level, 0.5, kTrials, 2);
  const double rer_strict = MeanRer(graph(), hierarchy(), level, 0.1, kTrials, 3);
  EXPECT_LT(rer_loose, rer_mid);
  EXPECT_LT(rer_mid, rer_strict);
  // 10x budget cut => ~10x error (Gaussian sigma scales as 1/eps).
  EXPECT_NEAR(rer_strict / rer_loose, 10.0, 4.0);
}

TEST_F(Figure1ShapeTest, FineLevelsAccurateCoarseLevelsPerturbed) {
  constexpr int kTrials = 30;
  const double rer_l1 = MeanRer(graph(), hierarchy(), 1, 0.999, kTrials, 11);
  const double rer_l7 = MeanRer(graph(), hierarchy(), 7, 0.999, kTrials, 12);
  // Paper: I9,1 ~ 0.2%, I9,7 ~ 35%.  Accept the right orders of magnitude.
  EXPECT_LT(rer_l1, 0.05);
  EXPECT_GT(rer_l7, 0.05);
  EXPECT_GT(rer_l7 / rer_l1, 10.0);
}

TEST_F(Figure1ShapeTest, TightBudgetStillUsableAtFineLevels) {
  constexpr int kTrials = 30;
  // Paper: at eps=0.1, levels I9,5..I9,0 "still show acceptable utility".
  const double rer_l3 = MeanRer(graph(), hierarchy(), 3, 0.1, kTrials, 21);
  EXPECT_LT(rer_l3, 0.30);
  const double rer_l7 = MeanRer(graph(), hierarchy(), 7, 0.1, kTrials, 22);
  EXPECT_GT(rer_l7, 1.0);  // coarse level effectively destroyed
}

TEST_F(Figure1ShapeTest, SensitivityGeometryDrivesRer) {
  // RER at a level is proportional to its sensitivity: verify the ratio of
  // mean RERs between two levels matches their sensitivity ratio.
  constexpr int kTrials = 60;
  const auto sens = hierarchy().LevelSensitivities(graph());
  const double rer_l5 = MeanRer(graph(), hierarchy(), 5, 0.999, kTrials, 31);
  const double rer_l7 = MeanRer(graph(), hierarchy(), 7, 0.999, kTrials, 32);
  const double sens_ratio =
      static_cast<double>(sens[7]) / static_cast<double>(sens[5]);
  EXPECT_NEAR(rer_l7 / rer_l5, sens_ratio, sens_ratio * 0.5);
}

}  // namespace
}  // namespace gdp
