// Bit-parity of the shard-parallel compile path: Phase-1 EM specialization
// and the release plan's parent-pointer rollup must produce results
// IDENTICAL to the sequential path for every pool size.  Sharding here is an
// execution detail — the privacy proof, the fingerprint discipline, and the
// determinism contract (same seed => same release) all assume the artifact
// does not depend on how many workers built it.
//
// The graph is sized past Partition::kDefaultShardGrain fine groups so the
// rollup actually takes the sharded path (a smaller graph would fall back to
// the sequential loop and the test would pin nothing).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/compiled_disclosure.hpp"
#include "core/release_plan.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "hier/partition.hpp"
#include "hier/specialization.hpp"

namespace gdp::hier {
namespace {

using gdp::common::Rng;
using gdp::common::ThreadPool;
using gdp::graph::BipartiteGraph;
using gdp::graph::Side;

// 60k level-0 singleton groups: comfortably past the 32768 default shard
// grain, so level 0 -> 1 rollups shard even on a 2-worker pool.
BipartiteGraph ShardScaleGraph() {
  Rng rng(11);
  return gdp::graph::GenerateUniformRandom(30'000, 30'000, 120'000, rng);
}

SpecializationConfig TestConfig() {
  SpecializationConfig cfg;
  cfg.depth = 6;
  cfg.arity = 4;
  return cfg;
}

void ExpectHierarchiesIdentical(const GroupHierarchy& a,
                                const GroupHierarchy& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int l = 0; l < a.num_levels(); ++l) {
    const Partition& x = a.level(l);
    const Partition& y = b.level(l);
    ASSERT_EQ(x.num_groups(), y.num_groups()) << "level " << l;
    for (const Side side : {Side::kLeft, Side::kRight}) {
      const auto lx = x.labels(side);
      const auto ly = y.labels(side);
      ASSERT_TRUE(std::equal(lx.begin(), lx.end(), ly.begin(), ly.end()))
          << "labels differ at level " << l;
    }
    const auto gx = x.groups();
    const auto gy = y.groups();
    for (std::size_t g = 0; g < gx.size(); ++g) {
      EXPECT_EQ(gx[g].side, gy[g].side) << "level " << l << " group " << g;
      EXPECT_EQ(gx[g].size, gy[g].size) << "level " << l << " group " << g;
      EXPECT_EQ(gx[g].parent, gy[g].parent)
          << "level " << l << " group " << g;
    }
  }
}

TEST(ParallelCompileTest, Phase1BitIdenticalAcrossPoolSizes) {
  const BipartiteGraph g = ShardScaleGraph();
  const Specializer spec(TestConfig());
  Rng seq_rng(77);
  const auto sequential = spec.BuildHierarchy(g, seq_rng);
  for (const int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    Rng rng(77);
    const auto parallel = spec.BuildHierarchy(g, rng, pool);
    EXPECT_EQ(parallel.num_em_draws, sequential.num_em_draws)
        << workers << " workers";
    EXPECT_EQ(parallel.epsilon_spent, sequential.epsilon_spent)
        << workers << " workers";
    ExpectHierarchiesIdentical(parallel.hierarchy, sequential.hierarchy);
  }
}

TEST(ParallelCompileTest, Phase1RngStreamMatchesSequential) {
  // The EM draws consume the rng strictly in group order on both paths, so
  // the POST-build rng state must match too — a diverging stream would
  // silently change every later noise draw of a compile.
  const BipartiteGraph g = ShardScaleGraph();
  const Specializer spec(TestConfig());
  Rng seq_rng(123);
  (void)spec.BuildHierarchy(g, seq_rng);
  const auto next_seq = seq_rng();
  ThreadPool pool(4);
  Rng par_rng(123);
  (void)spec.BuildHierarchy(g, par_rng, pool);
  EXPECT_EQ(par_rng(), next_seq);
}

TEST(ParallelCompileTest, RollupBitIdenticalAcrossPoolSizes) {
  const BipartiteGraph g = ShardScaleGraph();
  const Specializer spec(TestConfig());
  Rng rng(5);
  const auto built = spec.BuildHierarchy(g, rng);
  const auto sequential = gdp::core::ReleasePlan::Build(g, built.hierarchy);
  for (const int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    const auto plan =
        gdp::core::ReleasePlan::Build(g, built.hierarchy, pool);
    ASSERT_EQ(plan.num_levels(), sequential.num_levels())
        << workers << " workers";
    const auto fs = plan.FlatSums();
    const auto fs_seq = sequential.FlatSums();
    EXPECT_TRUE(std::equal(fs.begin(), fs.end(), fs_seq.begin(),
                           fs_seq.end()))
        << workers << " workers";
    const auto lo = plan.LevelOffsets();
    const auto lo_seq = sequential.LevelOffsets();
    EXPECT_TRUE(std::equal(lo.begin(), lo.end(), lo_seq.begin(),
                           lo_seq.end()))
        << workers << " workers";
    const auto ls = plan.LevelSensitivities();
    const auto ls_seq = sequential.LevelSensitivities();
    EXPECT_TRUE(std::equal(ls.begin(), ls.end(), ls_seq.begin(),
                           ls_seq.end()))
        << workers << " workers";
  }
}

TEST(ParallelCompileTest, RollupAtForcedTinyGrainStillExact) {
  // Tiny shard grain maximises the number of per-shard accumulators and
  // merge slots — the worst case for any ordering mistake in the merge.
  const BipartiteGraph g = ShardScaleGraph();
  const Specializer spec(TestConfig());
  Rng rng(5);
  const auto built = spec.BuildHierarchy(g, rng);
  const auto sequential = gdp::core::ReleasePlan::Build(g, built.hierarchy);
  ThreadPool pool(8);
  const auto plan = gdp::core::ReleasePlan::Build(g, built.hierarchy, pool,
                                                  /*shard_grain=*/64);
  const auto fs = plan.FlatSums();
  const auto fs_seq = sequential.FlatSums();
  EXPECT_TRUE(std::equal(fs.begin(), fs.end(), fs_seq.begin(), fs_seq.end()));
}

TEST(ParallelCompileTest, CompiledReleasesIdenticalAcrossThreadCounts) {
  // End to end through CompiledDisclosure: the full artifact (fingerprinted
  // plan + hierarchy) and a release drawn from it must not depend on the
  // compile's thread count.
  const BipartiteGraph g = ShardScaleGraph();
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = TestConfig().depth;
  spec.hierarchy.arity = TestConfig().arity;
  auto release_with_threads = [&](int threads) {
    gdp::core::SessionSpec s = spec;
    s.exec.num_threads = threads;
    Rng rng(42);
    auto compiled = gdp::core::CompiledDisclosure::Compile(g, s, rng);
    auto session = gdp::core::DisclosureSession::Attach(compiled);
    Rng release_rng(9);
    return session.Release(release_rng);
  };
  const auto two = release_with_threads(2);
  const auto eight = release_with_threads(8);
  ASSERT_EQ(two.num_levels(), eight.num_levels());
  for (int l = 0; l < two.num_levels(); ++l) {
    EXPECT_EQ(two.level(l).noisy_total, eight.level(l).noisy_total)
        << "level " << l;
    EXPECT_EQ(two.level(l).true_total, eight.level(l).true_total)
        << "level " << l;
    EXPECT_EQ(two.level(l).noisy_group_counts,
              eight.level(l).noisy_group_counts)
        << "level " << l;
  }
}

TEST(ParallelCompileTest, ShardedRollupStillOneScanPerBuild) {
  // The plan's defining property: ONE degree-sum node scan per build, with
  // every coarser level rolled up from parent pointers.  Sharding the
  // rollup must not silently regress into per-level rescans.
  const BipartiteGraph g = ShardScaleGraph();
  const Specializer spec(TestConfig());
  Rng rng(5);
  const auto built = spec.BuildHierarchy(g, rng);
  ThreadPool pool(8);
  const std::uint64_t before = Partition::DegreeSumScanCount();
  const auto plan = gdp::core::ReleasePlan::Build(g, built.hierarchy, pool);
  EXPECT_EQ(Partition::DegreeSumScanCount(), before + 1);
  (void)plan;
}

}  // namespace
}  // namespace gdp::hier
