#include "query/workload.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::query {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  return gdp::graph::GenerateUniformRandom(50, 50, 600, rng);
}

TEST(WorkloadTest, RejectsNullQuery) {
  Workload w;
  EXPECT_THROW(w.Add(nullptr), std::invalid_argument);
}

TEST(WorkloadTest, RunsEveryQuery) {
  const BipartiteGraph g = TestGraph();
  const Partition top = Partition::TopLevel(50, 50);
  Workload w;
  w.Add(std::make_unique<AssociationCountQuery>())
      .Add(std::make_unique<DegreeHistogramQuery>(Side::kLeft, 20));
  EXPECT_EQ(w.size(), 2u);
  Rng rng(5);
  const auto results =
      w.Run(g, top, gdp::core::NoiseKind::kGaussian, 0.9, 1e-5, rng);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].query_name, "association_count");
  EXPECT_EQ(results[1].query_name, "degree_histogram_left");
  for (const auto& r : results) {
    EXPECT_GT(r.sensitivity, 0.0);
    EXPECT_GT(r.noise_stddev, 0.0);
    EXPECT_EQ(r.truth.size(), r.noisy.size());
  }
}

TEST(WorkloadTest, MetricsAreConsistent) {
  const BipartiteGraph g = TestGraph();
  const Partition singles = Partition::Singletons(50, 50);
  Workload w;
  w.Add(std::make_unique<AssociationCountQuery>());
  Rng rng(7);
  const auto results =
      w.Run(g, singles, gdp::core::NoiseKind::kLaplace, 1.0, 1e-5, rng);
  const auto& r = results[0];
  // Scalar query: MAE equals |noise| and RER = MAE / truth.
  EXPECT_NEAR(r.mean_rer, r.mae / r.truth[0], 1e-12);
  EXPECT_NEAR(r.rmse, r.mae, 1e-9);
}

TEST(WorkloadTest, ZeroSensitivityReleasedExactly) {
  // Edgeless graph: all queries have zero group sensitivity.
  const BipartiteGraph g(10, 10, {});
  const Partition top = Partition::TopLevel(10, 10);
  Workload w;
  w.Add(std::make_unique<AssociationCountQuery>());
  Rng rng(9);
  const auto results =
      w.Run(g, top, gdp::core::NoiseKind::kGaussian, 0.5, 1e-5, rng);
  EXPECT_EQ(results[0].noisy, results[0].truth);
  EXPECT_EQ(results[0].noise_stddev, 0.0);
}

TEST(WorkloadTest, FinerLevelYieldsSmallerError) {
  const BipartiteGraph g = TestGraph();
  Workload w;
  w.Add(std::make_unique<AssociationCountQuery>());
  double err_fine = 0.0;
  double err_coarse = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed);
    Rng r2(seed + 1000);
    err_fine += w.Run(g, Partition::Singletons(50, 50),
                      gdp::core::NoiseKind::kGaussian, 0.9, 1e-5, r1)[0]
                    .mean_rer;
    err_coarse += w.Run(g, Partition::TopLevel(50, 50),
                        gdp::core::NoiseKind::kGaussian, 0.9, 1e-5, r2)[0]
                      .mean_rer;
  }
  EXPECT_LT(err_fine, err_coarse);
}

}  // namespace
}  // namespace gdp::query
