#include "dp/accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace gdp::dp {
namespace {

TEST(ComposeSequentialTest, SumsEpsilonAndDelta) {
  const std::vector<BudgetCharge> charges{{0.5, 1e-6, "a"}, {0.3, 2e-6, "b"}};
  const BudgetCharge total = ComposeSequential(charges);
  EXPECT_NEAR(total.epsilon, 0.8, 1e-12);
  EXPECT_NEAR(total.delta, 3e-6, 1e-15);
}

TEST(ComposeSequentialTest, EmptyIsZero) {
  const BudgetCharge total = ComposeSequential({});
  EXPECT_EQ(total.epsilon, 0.0);
  EXPECT_EQ(total.delta, 0.0);
}

TEST(ComposeParallelTest, TakesMaxima) {
  const std::vector<BudgetCharge> charges{
      {0.5, 1e-6, "a"}, {0.9, 0.0, "b"}, {0.2, 5e-6, "c"}};
  const BudgetCharge total = ComposeParallel(charges);
  EXPECT_DOUBLE_EQ(total.epsilon, 0.9);
  EXPECT_DOUBLE_EQ(total.delta, 5e-6);
}

TEST(ComposeParallelTest, RejectsEmpty) {
  EXPECT_THROW((void)ComposeParallel({}), std::invalid_argument);
}

TEST(ComposeAdvancedTest, MatchesFormula) {
  const double eps = 0.1;
  const int k = 100;
  const double slack = 1e-6;
  const BudgetCharge total = ComposeAdvanced(Epsilon(eps), 1e-8, k, slack);
  const double expected_eps = eps * std::sqrt(2.0 * k * std::log(1.0 / slack)) +
                              k * eps * std::expm1(eps);
  EXPECT_NEAR(total.epsilon, expected_eps, 1e-9);
  EXPECT_NEAR(total.delta, k * 1e-8 + slack, 1e-12);
}

TEST(ComposeAdvancedTest, BeatsSequentialForManySmallQueries) {
  const double eps = 0.01;
  const int k = 1000;
  const BudgetCharge adv = ComposeAdvanced(Epsilon(eps), 0.0, k, 1e-6);
  EXPECT_LT(adv.epsilon, eps * k);
}

TEST(ComposeAdvancedTest, RejectsBadArguments) {
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, 0, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), -0.1, 10, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, 10, 1.0),
               std::invalid_argument);
}

// Regression (input-validation satellite): negative k, δ = 1, and
// non-finite arguments must all fail the typed checks — none may reach the
// composition arithmetic.
TEST(ComposeAdvancedTest, RejectsNegativeKAndNonFiniteArguments) {
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, -5, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 1.0, 10, 1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(
                   Epsilon(0.1), std::numeric_limits<double>::quiet_NaN(), 10,
                   1e-6),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, 10,
                                     std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW((void)ComposeAdvanced(Epsilon(0.1), 0.0, 10,
                                     -std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(BudgetLedgerTest, RejectsBadCaps) {
  EXPECT_THROW(BudgetLedger(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BudgetLedger(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BudgetLedger(1.0, -0.1), std::invalid_argument);
}

TEST(BudgetLedgerTest, TracksSpendAndRemaining) {
  BudgetLedger ledger(1.0, 1e-4);
  ledger.Charge(0.4, 1e-5, "phase1");
  ledger.Charge(0.5, 2e-5, "phase2");
  EXPECT_NEAR(ledger.epsilon_spent(), 0.9, 1e-12);
  EXPECT_NEAR(ledger.delta_spent(), 3e-5, 1e-15);
  EXPECT_NEAR(ledger.epsilon_remaining(), 0.1, 1e-12);
  EXPECT_EQ(ledger.charges().size(), 2u);
}

TEST(BudgetLedgerTest, ThrowsOnEpsilonOverspend) {
  BudgetLedger ledger(1.0, 0.0);
  ledger.Charge(0.8, 0.0, "ok");
  EXPECT_THROW(ledger.Charge(0.3, 0.0, "too much"),
               gdp::common::BudgetExhaustedError);
  // A failed charge must not change the ledger.
  EXPECT_NEAR(ledger.epsilon_spent(), 0.8, 1e-12);
  EXPECT_EQ(ledger.charges().size(), 1u);
}

TEST(BudgetLedgerTest, ThrowsOnDeltaOverspend) {
  BudgetLedger ledger(10.0, 1e-6);
  EXPECT_THROW(ledger.Charge(0.1, 1e-5, "delta too big"),
               gdp::common::BudgetExhaustedError);
}

TEST(BudgetLedgerTest, ExactCapIsAllowed) {
  BudgetLedger ledger(1.0, 1e-5);
  EXPECT_NO_THROW(ledger.Charge(1.0, 1e-5, "all of it"));
  EXPECT_NEAR(ledger.epsilon_remaining(), 0.0, 1e-9);
}

TEST(BudgetLedgerTest, ManySmallChargesToleratesFloatAccumulation) {
  BudgetLedger ledger(1.0, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(ledger.Charge(0.1, 0.0, "slice"));
  }
  EXPECT_NEAR(ledger.epsilon_spent(), 1.0, 1e-9);
}

TEST(BudgetLedgerTest, RejectsNegativeCharge) {
  BudgetLedger ledger(1.0, 0.0);
  EXPECT_THROW(ledger.Charge(-0.1, 0.0, "negative"), std::invalid_argument);
}

TEST(BudgetLedgerTest, TryChargeRecordsWhenItFits) {
  BudgetLedger ledger(1.0, 1e-4);
  EXPECT_TRUE(ledger.TryCharge(0.6, 1e-5, "first"));
  EXPECT_NEAR(ledger.epsilon_spent(), 0.6, 1e-12);
  ASSERT_EQ(ledger.charges().size(), 1u);
  EXPECT_EQ(ledger.charges()[0].label, "first");
}

TEST(BudgetLedgerTest, TryChargeDeniesWithoutMutating) {
  BudgetLedger ledger(1.0, 1e-4);
  EXPECT_TRUE(ledger.TryCharge(0.6, 1e-5, "first"));
  EXPECT_FALSE(ledger.TryCharge(0.6, 1e-5, "overrun"));
  EXPECT_NEAR(ledger.epsilon_spent(), 0.6, 1e-12);
  EXPECT_EQ(ledger.charges().size(), 1u)
      << "a denied TryCharge must leave the ledger untouched";
  // Denial is exactly WouldExceed's answer; a fitting charge still lands.
  EXPECT_TRUE(ledger.WouldExceed(0.6, 0.0));
  EXPECT_FALSE(ledger.WouldExceed(0.4, 0.0));
  EXPECT_TRUE(ledger.TryCharge(0.4, 0.0, "exact fill"));
  EXPECT_FALSE(ledger.TryCharge(1e-6, 0.0, "past the cap"));
}

TEST(BudgetLedgerTest, TryChargeStillThrowsOnMalformedSpend) {
  // A malformed spend is a programming error, not an admission decision.
  BudgetLedger ledger(1.0, 0.0);
  EXPECT_THROW((void)ledger.TryCharge(-0.1, 0.0, "negative"),
               std::invalid_argument);
  EXPECT_THROW((void)ledger.TryCharge(0.1, 1.5, "bad delta"),
               std::invalid_argument);
}

TEST(BudgetLedgerTest, AuditReportListsCharges) {
  BudgetLedger ledger(2.0, 1e-4);
  ledger.Charge(0.5, 1e-5, "specialization");
  ledger.Charge(1.0, 2e-5, "noise");
  const std::string report = ledger.AuditReport();
  EXPECT_NE(report.find("specialization"), std::string::npos);
  EXPECT_NE(report.find("noise"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

}  // namespace
}  // namespace gdp::dp
