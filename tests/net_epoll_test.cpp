// The epoll-specific serving contracts net_server_test does not pin:
//   - connection scalability: >= 1024 mostly-idle connections held open on
//     O(1) I/O threads, surviving a short slow-loris timeout,
//   - partial writes: a response hitting EAGAIN mid-frame is finished via
//     EPOLLOUT re-arming, never lost and never blocking a worker,
//   - per-connection noise streams: seed-deterministic for a fixed accept
//     order, byte-identical across server instances, and ZERO global RNG
//     mutex acquisitions on the hot path (the contention seam),
//   - Stop() racing a connect flood: the accept gate closes first, no
//     registration can leak past the drain,
//   - client EINTR: interrupting signals never surface spurious IoErrors.
// The concurrent per-connection test is a TSan target in CI.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"

namespace gdp::net {
namespace {

using gdp::common::Rng;
using gdp::core::NoiseStreamMode;
using gdp::serve::DisclosureService;
using gdp::serve::TenantProfile;

gdp::graph::BipartiteGraph TestGraph(std::uint64_t seed = 3) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = 200;
  p.num_right = 300;
  p.num_edges = 1200;
  return GenerateDblpLike(p, rng);
}

gdp::core::SessionSpec SmallSpec() {
  gdp::core::SessionSpec spec;
  spec.hierarchy.depth = 4;
  spec.hierarchy.arity = 4;
  return spec;
}

std::unique_ptr<DisclosureService> MakeService() {
  auto svc = std::make_unique<DisclosureService>(4);
  svc->catalog().Register(
      "dblp", gdp::serve::Dataset{TestGraph(), SmallSpec(), 7, {}, {}});
  svc->broker().Register("alice", TenantProfile{100.0, 0.2, 0});
  svc->broker().Register("bob", TenantProfile{100.0, 0.2, 0});
  return svc;
}

wire::ServeRequest ServeReq(const std::string& tenant, double eps = 0.3) {
  wire::ServeRequest req;
  req.tenant = tenant;
  req.dataset = "dblp";
  req.budget.epsilon_g = eps;
  return req;
}

std::string Magic() { return std::string(wire::kMagic, wire::kMagicSize); }

int RawConnect(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    // Before connect: the window is negotiated at handshake time.
    EXPECT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
              0);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

void RawSend(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> RawRecvFrame(int fd, std::string& buffer) {
  char chunk[64 * 1024];
  for (;;) {
    std::optional<std::string> payload = wire::TryDeframe(buffer);
    if (payload.has_value()) {
      return payload;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

// The process's live thread count, from /proc/self/status.  The scalability
// contract is that this does NOT grow with connections.
int ThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(8));
    }
  }
  return -1;
}

// ---------- connection scalability ----------

TEST(NetEpollScaleTest, Holds1024IdleConnectionsOnO1IoThreads) {
  auto svc = MakeService();
  ServerConfig config;
  config.read_timeout_ms = 200;  // short: idle conns must NOT be on it
  Server server(*svc, config);
  ASSERT_EQ(Server::io_threads(), 1u);

  constexpr int kConns = 1024;
  const int threads_before = ThreadCount();
  ASSERT_GT(threads_before, 0);

  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    // Delivering the magic takes each connection OFF the slow-loris clock:
    // idle-between-requests is free, only mid-message silence is timed.
    RawSend(fd, Magic());
    fds.push_back(fd);
  }

  // Crossing 1024 connections must not have spawned a single thread — the
  // per-connection-reader design this replaces would have spawned 1024.
  EXPECT_EQ(ThreadCount(), threads_before);

  // Sit out more than the read timeout: nobody owes bytes, nobody dies.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  wire::StatsResponse stats = server.GetStats();
  EXPECT_EQ(stats.connections_open, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(stats.io_threads, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);

  // The table is live, not just open: first, middle, and last connections
  // all serve (and the response proves the 1024-way epoll interest set
  // routes to the right fd).
  for (const int idx : {0, kConns / 2, kConns - 1}) {
    RawSend(fds[static_cast<std::size_t>(idx)],
            wire::Frame(wire::Encode(ServeReq("alice", 0.05))));
    std::string buffer;
    const auto payload =
        RawRecvFrame(fds[static_cast<std::size_t>(idx)], buffer);
    ASSERT_TRUE(payload.has_value()) << "connection " << idx << " dead";
    EXPECT_EQ(wire::PeekKind(*payload), wire::MsgKind::kServeResponse);
  }

  // A half-sent frame still dies on the clock even at this scale (the sweep
  // scans 1024 connections and closes exactly the guilty one).
  RawSend(fds[3], std::string(4, '\x01'));
  std::string buffer;
  EXPECT_FALSE(RawRecvFrame(fds[3], buffer).has_value());
  EXPECT_GE(server.GetStats().protocol_errors, 1u);

  for (const int fd : fds) {
    ::close(fd);
  }
}

// ---------- partial writes ----------

TEST(NetEpollTest, PartialWriteIsFlushedViaEpolloutRearming) {
  auto svc = MakeService();
  ServerConfig config;
  config.num_workers = 2;
  // Generous: the deliberately unread responses below must not trip the
  // slow-loris clock (the peer owes us nothing while we stall reading).
  config.read_timeout_ms = 30000;
  Server server(*svc, config);

  // A capped receive window plus deliberately-unread multi-MB responses
  // forces the server's sends into EAGAIN mid-frame: each response is far
  // larger than the kernel can buffer on both sides of the loopback pair.
  const int raw = RawConnect(server.port(), /*rcvbuf=*/64 * 1024);
  wire::AnswerRequest answer;
  answer.tenant = "alice";
  answer.dataset = "dblp";
  answer.budget.epsilon_g = 0.05;
  for (int q = 0; q < 3; ++q) {
    // Degree histogram with a huge cap: 200002 bins of truth + noisy
    // doubles per query, ~9.6 MB per response (frame cap is 32 MB).
    answer.queries.push_back(wire::WireQuery{2, 0, 200000});
  }
  constexpr int kRequests = 2;
  std::string pipelined = Magic();
  for (int i = 0; i < kRequests; ++i) {
    pipelined += wire::Frame(wire::Encode(answer));
  }
  RawSend(raw, pipelined);

  // Let every job complete while we read NOTHING: workers must park the
  // bytes and move on, not block inside send().
  while (server.requests_completed() < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server.GetStats().partial_writes, 1u);

  // Now drain: every parked byte arrives intact and in order.
  std::string buffer;
  for (int i = 0; i < kRequests; ++i) {
    const auto payload = RawRecvFrame(raw, buffer);
    ASSERT_TRUE(payload.has_value()) << "response " << i << " lost";
    ASSERT_EQ(wire::PeekKind(*payload), wire::MsgKind::kAnswerResponse);
    const wire::AnswerResponse got = wire::DecodeAnswerResponse(*payload);
    ASSERT_EQ(got.results.size(), 3u);
    EXPECT_EQ(got.results[0].truth.size(), 200002u);
  }
  ::close(raw);
}

// ---------- per-connection noise streams ----------

// Runs the same request script against a fresh server and returns the raw
// response payloads, per connection, in order.
std::vector<std::vector<std::string>> RunPerConnScript(std::uint64_t seed) {
  auto svc = MakeService();
  ServerConfig config;
  config.seed = seed;
  config.noise_streams = NoiseStreamMode::kPerConnection;
  Server server(*svc, config);

  std::vector<std::vector<std::string>> out(2);
  // Accept order is the stream key, so pin it: finish a round trip on the
  // first connection before opening the second.
  const int fd0 = RawConnect(server.port());
  RawSend(fd0, Magic());
  std::string buf0;
  const char* tenants[2] = {"alice", "bob"};
  RawSend(fd0, wire::Frame(wire::Encode(ServeReq(tenants[0]))));
  out[0].push_back(*RawRecvFrame(fd0, buf0));

  const int fd1 = RawConnect(server.port());
  RawSend(fd1, Magic());
  std::string buf1;
  RawSend(fd1, wire::Frame(wire::Encode(ServeReq(tenants[1]))));
  out[1].push_back(*RawRecvFrame(fd1, buf1));

  // Second request on each: draws continue each connection's own stream.
  RawSend(fd0, wire::Frame(wire::Encode(ServeReq(tenants[0]))));
  out[0].push_back(*RawRecvFrame(fd0, buf0));
  RawSend(fd1, wire::Frame(wire::Encode(ServeReq(tenants[1]))));
  out[1].push_back(*RawRecvFrame(fd1, buf1));

  EXPECT_EQ(server.rng_mutex_acquisitions(), 0u)
      << "per-connection mode took the global RNG mutex";
  const wire::StatsResponse stats = server.GetStats();
  EXPECT_EQ(stats.noise_streams, 1);
  EXPECT_EQ(stats.rng_mutex_acquisitions, 0u);
  ::close(fd0);
  ::close(fd1);
  return out;
}

TEST(NetNoiseStreamTest, PerConnectionModeIsSeedDeterministicPerAcceptOrder) {
  const auto first = RunPerConnScript(99);
  const auto second = RunPerConnScript(99);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t c = 0; c < first.size(); ++c) {
    ASSERT_EQ(first[c].size(), second[c].size());
    for (std::size_t i = 0; i < first[c].size(); ++i) {
      // Byte-identical across server instances: the stream is a pure
      // function of (seed, accept order, per-connection request order).
      EXPECT_EQ(first[c][i], second[c][i])
          << "conn " << c << " request " << i << " not reproducible";
    }
  }
  // Different connections draw decorrelated noise from the same seed.
  EXPECT_NE(first[0][0], first[1][0]);
  // And a different seed moves every draw.
  const auto other = RunPerConnScript(100);
  EXPECT_NE(first[0][0], other[0][0]);
}

TEST(NetNoiseStreamTest, SharedModeStillSerializesOnTheGlobalStream) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});  // default: kShared
  Client client(server.port());
  ASSERT_TRUE(client.Serve(ServeReq("alice")).ok());
  // The seam the per-connection assertions lean on actually counts.
  EXPECT_GE(server.rng_mutex_acquisitions(), 1u);
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value.noise_streams, 0);
  EXPECT_GE(stats.value.rng_mutex_acquisitions, 1u);
}

// ---------- concurrency in per-connection mode (the TSan target) ----------

TEST(NetEpollConcurrentTest, PerConnectionServeUnderConcurrencyIsLockFree) {
  auto svc = std::make_unique<DisclosureService>(4);
  svc->catalog().Register(
      "dblp", gdp::serve::Dataset{TestGraph(), SmallSpec(), 7, {}, {}});
  constexpr int kThreads = 8;
  constexpr int kRequestsEach = 5;
  for (int t = 0; t < kThreads; ++t) {
    svc->broker().Register("tenant" + std::to_string(t),
                           TenantProfile{100.0, 0.2, t % 5});
  }
  ServerConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  config.noise_streams = NoiseStreamMode::kPerConnection;
  Server server(*svc, config);

  std::vector<std::thread> threads;
  std::vector<int> granted(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &granted, t] {
      Client client(server.port());
      wire::ServeRequest req;
      req.tenant = "tenant" + std::to_string(t);
      req.dataset = "dblp";
      req.budget.epsilon_g = 0.25;
      for (int i = 0; i < kRequestsEach; ++i) {
        const auto reply = client.Serve(req);
        ASSERT_TRUE(reply.ok()) << reply.message;
        ASSERT_TRUE(reply.value.granted) << reply.value.denial_reason;
        granted[t] += 1;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(granted[t], kRequestsEach);
  }
  // The whole point of the mode: zero hot-path acquisitions of the global
  // RNG mutex, even with 8 connections and 4 workers racing.
  EXPECT_EQ(server.rng_mutex_acquisitions(), 0u);
  constexpr auto kTotal = static_cast<std::uint64_t>(kThreads * kRequestsEach);
  wire::StatsResponse stats = server.GetStats();
  for (int spin = 0; spin < 2000 && stats.requests_completed < kTotal;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server.GetStats();
  }
  EXPECT_EQ(stats.requests_completed, kTotal);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---------- Stop() vs connect flood ----------

TEST(NetEpollTest, StopToleratesConnectFloodWithoutLateRegistrations) {
  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const std::uint16_t port = server.port();

  std::atomic<bool> stop_flooding{false};
  std::vector<std::thread> flooders;
  flooders.reserve(4);
  for (int t = 0; t < 4; ++t) {
    flooders.emplace_back([port, &stop_flooding] {
      while (!stop_flooding.load(std::memory_order_relaxed)) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
          continue;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        // Failure is the point once the gate closes; any outcome but a
        // server crash/hang is correct.
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const std::string magic = Magic();
          (void)::send(fd, magic.data(), magic.size(), MSG_NOSIGNAL);
        }
        ::close(fd);
      }
    });
  }
  // Let the flood establish, then stop mid-flood: the accept gate must
  // close before the drain, so no connection can register against a
  // tearing-down table.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  stop_flooding.store(true, std::memory_order_relaxed);
  for (std::thread& t : flooders) {
    t.join();
  }
  // The table fully unwound: every accepted connection was also closed.
  EXPECT_EQ(server.GetStats().connections_open, 0u);
  // And the listener is really gone.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_NE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);
}

// ---------- EINTR ----------

void NoopHandler(int) {}

// An interval timer peppering the CLIENT thread with non-SA_RESTART signals:
// every connect/send/recv in the round trips below may return EINTR, and
// none of it may surface as a spurious IoError.  SIGALRM is blocked on the
// main thread BEFORE the server exists, so every server thread inherits the
// block and only the client thread takes the interrupts.
TEST(NetEintrTest, ClientRoundTripsSurviveInterruptingSignals) {
  sigset_t alarm_set;
  sigemptyset(&alarm_set);
  sigaddset(&alarm_set, SIGALRM);
  ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &alarm_set, nullptr), 0);

  auto svc = MakeService();
  Server server(*svc, ServerConfig{});
  const std::uint16_t port = server.port();

  struct sigaction sa{};
  sa.sa_handler = NoopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls must see EINTR
  struct sigaction old_sa{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);

  itimerval timer{};
  timer.it_interval.tv_usec = 2000;  // every 2 ms
  timer.it_value.tv_usec = 2000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, nullptr), 0);

  std::atomic<int> completed{0};
  std::string failure;
  std::thread client_thread([&] {
    // The one thread that takes SIGALRM.
    sigset_t unblock;
    sigemptyset(&unblock);
    sigaddset(&unblock, SIGALRM);
    pthread_sigmask(SIG_UNBLOCK, &unblock, nullptr);
    try {
      for (int i = 0; i < 25; ++i) {
        Client client(port);  // a fresh connect() under fire each time
        const auto reply = client.Serve(ServeReq("alice", 0.05));
        if (!reply.ok() || !reply.value.granted) {
          failure = "round trip " + std::to_string(i) +
                    " failed: " + reply.message;
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const std::exception& e) {
      failure = e.what();
    }
  });
  client_thread.join();

  itimerval disarm{};
  setitimer(ITIMER_REAL, &disarm, nullptr);
  sigaction(SIGALRM, &old_sa, nullptr);
  pthread_sigmask(SIG_UNBLOCK, &alarm_set, nullptr);

  EXPECT_EQ(failure, "");
  EXPECT_EQ(completed.load(), 25);
}

}  // namespace
}  // namespace gdp::net
