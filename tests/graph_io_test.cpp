#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::graph {
namespace {

TEST(GraphIoTest, RoundTripsThroughStream) {
  const BipartiteGraph g(3, 4, {{0, 0}, {1, 2}, {2, 3}, {0, 3}});
  std::stringstream ss;
  WriteEdgeList(g, ss);
  const BipartiteGraph back = ReadEdgeList(ss);
  EXPECT_EQ(back.num_left(), 3u);
  EXPECT_EQ(back.num_right(), 4u);
  EXPECT_EQ(back.EdgeList(), g.EdgeList());
}

TEST(GraphIoTest, RoundTripsRandomGraph) {
  gdp::common::Rng rng(3);
  const BipartiteGraph g = GenerateUniformRandom(50, 60, 500, rng);
  std::stringstream ss;
  WriteEdgeList(g, ss);
  const BipartiteGraph back = ReadEdgeList(ss);
  EXPECT_EQ(back.EdgeList(), g.EdgeList());
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "2 2\n"
      "# another comment\n"
      "0 1\n"
      "\n"
      "1 0\n");
  const BipartiteGraph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIoTest, AcceptsTabsAndSpaces) {
  std::istringstream in("2\t3\n0\t2\n1 1\n");
  const BipartiteGraph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(Side::kRight, 2), 1u);
}

TEST(GraphIoTest, EmptyEdgeSectionIsValid) {
  std::istringstream in("4 5\n");
  const BipartiteGraph g = ReadEdgeList(in);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_left(), 4u);
}

TEST(GraphIoTest, MissingHeaderThrows) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW((void)ReadEdgeList(in), gdp::common::IoError);
}

TEST(GraphIoTest, MalformedHeaderThrows) {
  std::istringstream in("abc def\n");
  EXPECT_THROW((void)ReadEdgeList(in), gdp::common::IoError);
}

TEST(GraphIoTest, MalformedEdgeThrows) {
  std::istringstream in("2 2\n0 x\n");
  EXPECT_THROW((void)ReadEdgeList(in), gdp::common::IoError);
}

TEST(GraphIoTest, TruncatedEdgeLineThrows) {
  std::istringstream in("2 2\n1\n");
  EXPECT_THROW((void)ReadEdgeList(in), gdp::common::IoError);
}

TEST(GraphIoTest, OutOfRangeEndpointThrows) {
  std::istringstream in("2 2\n0 5\n");
  EXPECT_THROW((void)ReadEdgeList(in), gdp::common::IoError);
}

TEST(GraphIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gdp_io_test_graph.tsv";
  const BipartiteGraph g(2, 2, {{0, 0}, {1, 1}});
  WriteEdgeListFile(g, path);
  const BipartiteGraph back = ReadEdgeListFile(path);
  EXPECT_EQ(back.EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW((void)ReadEdgeListFile("/nonexistent/path/graph.tsv"),
               gdp::common::IoError);
}

TEST(GraphIoTest, UnwritablePathThrows) {
  const BipartiteGraph g(1, 1, {});
  EXPECT_THROW(WriteEdgeListFile(g, "/nonexistent/dir/out.tsv"),
               gdp::common::IoError);
}

}  // namespace
}  // namespace gdp::graph
