#include "baseline/safe_grouping.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gdp::baseline {
namespace {

using gdp::common::Rng;

TEST(SafeGroupingTest, RejectsBadK) {
  const BipartiteGraph g(4, 4, {{0, 0}});
  Rng rng(1);
  SafeGroupingConfig cfg;
  cfg.k = 0;
  EXPECT_THROW((void)BuildSafeGrouping(g, Side::kLeft, cfg, rng),
               std::invalid_argument);
}

TEST(SafeGroupingTest, RejectsEmptySide) {
  const BipartiteGraph g(0, 4, {});
  Rng rng(1);
  EXPECT_THROW((void)BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, rng),
               std::invalid_argument);
}

TEST(SafeGroupingTest, CoversEveryNodeExactlyOnce) {
  Rng grng(3);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(200, 200, 1000, grng);
  Rng rng(5);
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, rng);
  EXPECT_EQ(sg.group_of.size(), 200u);
  for (const auto gid : sg.group_of) {
    EXPECT_LT(gid, sg.num_groups);
  }
}

TEST(SafeGroupingTest, GroupCountsSumToEdges) {
  Rng grng(3);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(150, 150, 900, grng);
  Rng rng(7);
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, rng);
  const std::uint64_t total =
      std::accumulate(sg.group_counts.begin(), sg.group_counts.end(),
                      std::uint64_t{0});
  EXPECT_EQ(total, g.num_edges());
}

TEST(SafeGroupingTest, SparseGraphAchievesStrictSafety) {
  // A perfect matching is trivially safe to group: no two left nodes share a
  // right neighbour.
  std::vector<gdp::graph::Edge> edges;
  for (gdp::graph::NodeIndex v = 0; v < 64; ++v) {
    edges.push_back({v, v});
  }
  const BipartiteGraph g(64, 64, std::move(edges));
  Rng rng(9);
  SafeGroupingConfig cfg;
  cfg.k = 4;
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, cfg, rng);
  EXPECT_EQ(sg.safety_violations, 0u);
  // Groups of exactly k on a 64-node matching.
  EXPECT_EQ(sg.num_groups, 16u);
}

TEST(SafeGroupingTest, SafetyHoldsWhenNoViolationsReported) {
  Rng grng(11);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(300, 600, 900, grng);
  Rng rng(13);
  SafeGroupingConfig cfg;
  cfg.k = 3;
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, cfg, rng);
  if (sg.safety_violations == 0) {
    // Verify the invariant directly: within each group no two *members*
    // share a neighbour.  (The uniform generator can emit parallel edges, so
    // deduplicate each node's own adjacency first.)
    std::vector<std::unordered_set<gdp::graph::NodeIndex>> claimed(sg.num_groups);
    for (gdp::graph::NodeIndex v = 0; v < 300; ++v) {
      const auto nbrs = g.Neighbors(Side::kLeft, v);
      const std::unordered_set<gdp::graph::NodeIndex> distinct(nbrs.begin(),
                                                               nbrs.end());
      for (const auto u : distinct) {
        EXPECT_TRUE(claimed[sg.group_of[v]].insert(u).second)
            << "group " << sg.group_of[v] << " shares neighbour " << u;
      }
    }
  }
}

TEST(SafeGroupingTest, MostGroupsReachSizeK) {
  Rng grng(17);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(400, 2000, 1200, grng);
  Rng rng(19);
  SafeGroupingConfig cfg;
  cfg.k = 5;
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, cfg, rng);
  std::vector<int> sizes(sg.num_groups, 0);
  for (const auto gid : sg.group_of) {
    ++sizes[gid];
  }
  int undersized = 0;
  for (const int s : sizes) {
    if (s < cfg.k) {
      ++undersized;
    }
  }
  EXPECT_LE(undersized, 1);  // at most the final leftover group
}

TEST(SafeGroupingTest, ToPartitionRoundTrips) {
  Rng grng(23);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(100, 100, 400, grng);
  Rng rng(29);
  const SafeGrouping sg = BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, rng);
  const gdp::hier::Partition p = ToPartition(sg, g);
  EXPECT_EQ(p.num_groups(), sg.num_groups + 1);
  for (gdp::graph::NodeIndex v = 0; v < 100; ++v) {
    EXPECT_EQ(p.GroupOf(Side::kLeft, v), sg.group_of[v]);
    EXPECT_EQ(p.GroupOf(Side::kRight, v), sg.num_groups);
  }
  // Published group counts equal the partition's degree sums.
  const auto sums = p.GroupDegreeSums(g);
  for (std::uint32_t gid = 0; gid < sg.num_groups; ++gid) {
    EXPECT_EQ(sums[gid], sg.group_counts[gid]);
  }
}

TEST(SafeGroupingTest, RightSideGroupingWorks) {
  Rng grng(31);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(50, 120, 300, grng);
  Rng rng(37);
  const SafeGrouping sg =
      BuildSafeGrouping(g, Side::kRight, SafeGroupingConfig{}, rng);
  EXPECT_EQ(sg.group_of.size(), 120u);
  EXPECT_EQ(sg.side, Side::kRight);
  const gdp::hier::Partition p = ToPartition(sg, g);
  EXPECT_EQ(p.num_left_nodes(), 50u);
  EXPECT_EQ(p.num_right_nodes(), 120u);
}

TEST(SafeGroupingTest, DeterministicUnderSeed) {
  Rng grng(41);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(80, 80, 240, grng);
  Rng r1(43);
  Rng r2(43);
  const SafeGrouping a = BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, r1);
  const SafeGrouping b = BuildSafeGrouping(g, Side::kLeft, SafeGroupingConfig{}, r2);
  EXPECT_EQ(a.group_of, b.group_of);
  EXPECT_EQ(a.num_groups, b.num_groups);
}

}  // namespace
}  // namespace gdp::baseline
