// The 100M-edge acceptance flow: generate --stream -> pack --compile ->
// serve one release, in ONE process, with the peak RSS asserted against the
// documented budget (docs/PERF.md, SCALE).  The full-scale variant runs only
// under GDP_LARGE=1 (the nightly large mode — it takes tens of minutes on
// one core); a scaled-down twin of the identical flow always runs so the
// pipeline itself cannot rot between nightlies.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/commands.hpp"
#include "common/rng.hpp"
#include "core/compiled_disclosure.hpp"
#include "serve/service.hpp"
#include "serve/session_registry.hpp"
#include "storage/snapshot.hpp"

namespace {

// VmHWM (peak resident set) in bytes from /proc/self/status; 0 if absent.
std::uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream ss(line.substr(6));
      std::uint64_t kb = 0;
      ss >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

// generate --stream -> pack --compile -> serve one release, returning the
// noisy total so the caller can assert a release actually happened.
double RunEndToEnd(std::int64_t left, std::int64_t right, std::int64_t edges,
                   const std::string& stem) {
  const std::string tsv = ::testing::TempDir() + "/" + stem + ".tsv";
  const std::string snap = ::testing::TempDir() + "/" + stem + ".gdps";
  std::ostringstream out;
  EXPECT_EQ(gdp::cli::Dispatch(
                {"generate", "--out", tsv, "--left", std::to_string(left),
                 "--right", std::to_string(right), "--edges",
                 std::to_string(edges), "--seed", "1", "--stream"},
                out),
            0);
  EXPECT_EQ(gdp::cli::Dispatch({"pack", "--graph", tsv, "--out", snap,
                                "--compile", "--seed", "42"},
                               out),
            0);
  std::remove(tsv.c_str());

  // Serve exactly like a packed cold start: snapshot registered lazily, the
  // embedded plan adopted by fingerprint (pack and serve use the same
  // default spec flags + seed), one release drawn.
  gdp::core::SessionSpec spec;  // defaults match pack's defaults
  gdp::serve::DisclosureService svc(1);
  svc.catalog().RegisterSnapshot("ds", snap, spec, 42);
  gdp::serve::TenantProfile profile;
  profile.epsilon_cap = 1e6;
  profile.delta_cap = 0.5;
  profile.privilege = 1;
  svc.broker().Register("tenant", profile);
  gdp::common::Rng rng(7);
  const auto result = svc.Serve("tenant", "ds", spec.budget, rng);
  EXPECT_TRUE(result.granted);
  std::remove(snap.c_str());
  return result.view.noisy_total;
}

TEST(ScaleSmokeTest, EndToEndFlowAtSmallScale) {
  const double noisy = RunEndToEnd(20'000, 33'000, 100'000, "gdp_scale_smoke");
  // A release over 100k associations lands near the true total; 0.0 exactly
  // would mean the release never happened.
  EXPECT_NE(noisy, 0.0);
}

TEST(ScaleLargeTest, HundredMillionEdgesUnderMemoryBudget) {
  const char* large = std::getenv("GDP_LARGE");
  if (large == nullptr || std::string(large) != "1") {
    GTEST_SKIP() << "set GDP_LARGE=1 to run the 100M-edge acceptance flow";
  }
  // The documented budget (docs/PERF.md, SCALE): the whole flow — 53M nodes
  // of CSR, ten hierarchy levels of labels, the plan, and one served
  // release — stays under 16 GiB peak RSS.  The pre-streaming pipeline blew
  // past this on the text read (file_size/4 edge reserve) and the
  // whole-file snapshot staging buffer alone.
  constexpr std::uint64_t kBudgetBytes = std::uint64_t{16} << 30;
  const double noisy =
      RunEndToEnd(20'000'000, 33'000'000, 100'000'000, "gdp_scale_large");
  EXPECT_NE(noisy, 0.0);
  const std::uint64_t peak = PeakRssBytes();
  ASSERT_GT(peak, 0u) << "VmHWM unavailable";
  EXPECT_LT(peak, kBudgetBytes)
      << "peak RSS " << (peak >> 20) << " MiB exceeds the documented "
      << (kBudgetBytes >> 20) << " MiB budget";
  std::cout << "# 100M-edge flow peak RSS: " << (peak >> 20) << " MiB\n";
}

}  // namespace
