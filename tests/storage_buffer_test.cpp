// Buffer / ColumnView: the owning-or-borrowed column abstraction under the
// snapshot format.  Pins the keepalive contract (a borrowed view holds the
// Buffer alive on its own), value semantics of copies, and ViewColumn's
// bounds/alignment rejection of hostile offsets.
#include "storage/buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gdp::storage {
namespace {

using gdp::common::SnapshotFormatError;

std::vector<std::byte> BytesOf(const std::vector<std::uint32_t>& values) {
  std::vector<std::byte> bytes(values.size() * sizeof(std::uint32_t));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BufferTest, FromBytesOwnsData) {
  auto buffer = Buffer::FromBytes(BytesOf({1, 2, 3}));
  ASSERT_EQ(buffer->size(), 12u);
  EXPECT_FALSE(buffer->mapped());
  std::uint32_t first = 0;
  std::memcpy(&first, buffer->data(), sizeof(first));
  EXPECT_EQ(first, 1u);
}

TEST(BufferTest, MapFileRoundTrip) {
  const std::string path = TempPath("gdp_buffer_test.bin");
  const std::vector<std::uint32_t> values{7, 8, 9, 10};
  {
    std::ofstream out(path, std::ios::binary);
    const auto bytes = BytesOf(values);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  auto buffer = Buffer::MapFile(path);
  EXPECT_TRUE(buffer->mapped());
  ASSERT_EQ(buffer->size(), values.size() * sizeof(std::uint32_t));
  const auto view = ViewColumn<std::uint32_t>(buffer, 0, values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(view[i], values[i]);
  }
  std::remove(path.c_str());
}

TEST(BufferTest, MapFileMissingThrows) {
  EXPECT_THROW((void)Buffer::MapFile(TempPath("gdp_buffer_test_missing.bin")),
               gdp::common::IoError);
}

TEST(BufferTest, MapEmptyFileYieldsEmptyBuffer) {
  const std::string path = TempPath("gdp_buffer_test_empty.bin");
  { std::ofstream out(path, std::ios::binary); }
  auto buffer = Buffer::MapFile(path);
  EXPECT_EQ(buffer->size(), 0u);
  std::remove(path.c_str());
}

TEST(ColumnViewTest, OwningCopyIsDeep) {
  ColumnView<std::uint32_t> a(std::vector<std::uint32_t>{1, 2, 3});
  ColumnView<std::uint32_t> b = a;
  EXPECT_FALSE(a.borrowed());
  EXPECT_NE(a.view().data(), b.view().data());
  EXPECT_EQ(b[2], 3u);
}

TEST(ColumnViewTest, BorrowedCopyAliasesAndKeepsBufferAlive) {
  ColumnView<std::uint32_t> outlives;
  {
    auto buffer = Buffer::FromBytes(BytesOf({4, 5, 6}));
    const auto view = ViewColumn<std::uint32_t>(buffer, 0, 3);
    EXPECT_TRUE(view.borrowed());
    outlives = view;  // the copy must alias AND hold the buffer alive
    EXPECT_EQ(outlives.view().data(), view.view().data());
  }
  // The only remaining owner of the bytes is the view's keepalive.
  ASSERT_EQ(outlives.size(), 3u);
  EXPECT_EQ(outlives[0], 4u);
  EXPECT_EQ(outlives[2], 6u);
}

TEST(ColumnViewTest, ViewColumnRejectsHostileExtents) {
  auto buffer = Buffer::FromBytes(BytesOf({1, 2, 3}));  // 12 bytes
  // Count past the end.
  EXPECT_THROW((void)ViewColumn<std::uint32_t>(buffer, 0, 4),
               SnapshotFormatError);
  // Offset past the end.
  EXPECT_THROW((void)ViewColumn<std::uint32_t>(buffer, 16, 1),
               SnapshotFormatError);
  // Offset + count overflowing: count chosen so offset + count*4 wraps.
  EXPECT_THROW((void)ViewColumn<std::uint32_t>(
                   buffer, 4, std::numeric_limits<std::size_t>::max() / 2),
               SnapshotFormatError);
  // Misaligned offset for the element type.
  EXPECT_THROW((void)ViewColumn<std::uint32_t>(buffer, 2, 1),
               SnapshotFormatError);
  // Null buffer.
  EXPECT_THROW((void)ViewColumn<std::uint32_t>(nullptr, 0, 0),
               SnapshotFormatError);
  // An in-bounds aligned carve succeeds.
  const auto ok = ViewColumn<std::uint32_t>(buffer, 4, 2);
  EXPECT_EQ(ok[0], 2u);
  EXPECT_EQ(ok[1], 3u);
}

}  // namespace
}  // namespace gdp::storage
