// The pluggable accounting subsystem: MechanismEvent validation, the three
// PrivacyAccountant backends, the policy-driven BudgetLedger admission, and
// the property pin that RDP composition beats the sequential Σε for k >= 2
// Gaussian mechanisms across an (m, k, δ) grid.  Runs under ASan (full
// suite) and TSan (CI filter) — the accountants are plain value state, so
// the sanitizer runs pin allocation/lifetime, not races.
#include "dp/privacy_accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "dp/accountant.hpp"
#include "dp/gaussian.hpp"
#include "dp/rdp_accountant.hpp"

namespace gdp::dp {
namespace {

// ---------- MechanismEvent ----------

TEST(MechanismEventTest, FactoriesFillKindAndTotals) {
  const MechanismEvent g = MechanismEvent::Gaussian(0.5, 1e-6, 4.0, 3, 9);
  EXPECT_EQ(g.kind, MechanismEvent::Kind::kGaussian);
  EXPECT_DOUBLE_EQ(g.noise_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(g.TotalEpsilon(), 1.5);
  EXPECT_DOUBLE_EQ(g.TotalDelta(), 3e-6);
  EXPECT_EQ(g.parallel_width, 9);

  const MechanismEvent p = MechanismEvent::PureEps(0.2);
  EXPECT_EQ(p.kind, MechanismEvent::Kind::kPureEps);
  EXPECT_DOUBLE_EQ(p.TotalDelta(), 0.0);

  const MechanismEvent o = MechanismEvent::Opaque(0.3, 1e-7);
  EXPECT_EQ(o.kind, MechanismEvent::Kind::kOpaque);
}

TEST(MechanismEventTest, ValidationRejectsMalformedEvents) {
  EXPECT_THROW(ValidateMechanismEvent(MechanismEvent::Opaque(-0.1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ValidateMechanismEvent(MechanismEvent::Opaque(
                   std::numeric_limits<double>::quiet_NaN(), 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ValidateMechanismEvent(MechanismEvent::Opaque(0.1, 1.5)),
               std::invalid_argument);
  EXPECT_THROW(ValidateMechanismEvent(MechanismEvent::Opaque(0.1, 0.0, 0)),
               std::invalid_argument);
  // A Gaussian event must carry a usable noise multiplier.
  EXPECT_THROW(ValidateMechanismEvent(MechanismEvent::Gaussian(0.1, 1e-6, 0.0)),
               std::invalid_argument);
  MechanismEvent bad_width = MechanismEvent::PureEps(0.1);
  bad_width.parallel_width = 0;
  EXPECT_THROW(ValidateMechanismEvent(bad_width), std::invalid_argument);
  EXPECT_NO_THROW(
      ValidateMechanismEvent(MechanismEvent::Gaussian(0.1, 1e-6, 5.0)));
}

TEST(AccountingPolicyTest, NamesAndParsingRoundTrip) {
  EXPECT_EQ(ParseAccountingPolicy("sequential"), AccountingPolicy::kSequential);
  EXPECT_EQ(ParseAccountingPolicy("advanced"), AccountingPolicy::kAdvanced);
  EXPECT_EQ(ParseAccountingPolicy("rdp"), AccountingPolicy::kRdp);
  for (const AccountingPolicy p :
       {AccountingPolicy::kSequential, AccountingPolicy::kAdvanced,
        AccountingPolicy::kRdp}) {
    EXPECT_EQ(ParseAccountingPolicy(AccountingPolicyName(p)), p);
  }
  EXPECT_THROW((void)ParseAccountingPolicy("renyi"), std::invalid_argument);
  EXPECT_THROW((void)ParseAccountingPolicy(""), std::invalid_argument);
}

// ---------- accountant backends ----------

TEST(SequentialAccountantTest, GuaranteeIsNaiveSums) {
  const auto acct = MakeAccountant(AccountingPolicy::kSequential);
  acct->Spend(MechanismEvent::Gaussian(0.5, 1e-6, 5.0));
  acct->Spend(MechanismEvent::PureEps(0.25));
  const BudgetCharge g = acct->CumulativeGuarantee(1e-9);  // target ignored
  EXPECT_NEAR(g.epsilon, 0.75, 1e-12);
  EXPECT_NEAR(g.delta, 1e-6, 1e-18);
  EXPECT_EQ(acct->policy(), AccountingPolicy::kSequential);
}

TEST(AdvancedAccountantTest, ManySmallChargesBeatSequential) {
  const auto acct = MakeAccountant(AccountingPolicy::kAdvanced);
  const int k = 200;
  for (int i = 0; i < k; ++i) {
    acct->Spend(MechanismEvent::Opaque(0.01, 0.0));
  }
  const BudgetCharge g = acct->CumulativeGuarantee(1e-6);
  EXPECT_LT(g.epsilon, 0.01 * k);
  EXPECT_NEAR(g.delta, 1e-6, 1e-15);
  // And it matches the closed-form k-fold bound for homogeneous charges.
  const BudgetCharge closed = ComposeAdvanced(Epsilon(0.01), 0.0, k, 1e-6);
  EXPECT_NEAR(g.epsilon, closed.epsilon, 1e-9);
}

TEST(AdvancedAccountantTest, NeverWorseThanSequentialBound) {
  // For ONE large charge the advanced formula is worse than Σε; the
  // accountant must cap at the basic bound.
  const auto acct = MakeAccountant(AccountingPolicy::kAdvanced);
  acct->Spend(MechanismEvent::Opaque(1.0, 0.0));
  EXPECT_LE(acct->CumulativeGuarantee(1e-6).epsilon, 1.0 + 1e-12);
}

TEST(AdvancedAccountantTest, GuaranteeValidatesTargetDelta) {
  const auto acct = MakeAccountant(AccountingPolicy::kAdvanced);
  EXPECT_THROW((void)acct->CumulativeGuarantee(0.0), std::invalid_argument);
  EXPECT_THROW((void)acct->CumulativeGuarantee(1.0), std::invalid_argument);
  EXPECT_THROW((void)acct->CumulativeGuarantee(
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(RdpBackedAccountantTest, GaussianCompositionMatchesRdpAccountant) {
  const auto acct = MakeAccountant(AccountingPolicy::kRdp);
  acct->Spend(MechanismEvent::Gaussian(0.9, 1e-5, 5.0, 8));
  const BudgetCharge g = acct->CumulativeGuarantee(1e-6);
  EXPECT_NEAR(g.epsilon, RdpGaussianComposition(5.0, 8, Delta(1e-6)), 1e-12);
  EXPECT_NEAR(g.delta, 1e-6, 1e-15);
}

TEST(RdpBackedAccountantTest, OpaqueEventsComposeBasicallyOnTop) {
  const auto acct = MakeAccountant(AccountingPolicy::kRdp);
  acct->Spend(MechanismEvent::Gaussian(0.9, 1e-5, 5.0, 4));
  acct->Spend(MechanismEvent::Opaque(0.5, 1e-7));
  const BudgetCharge g = acct->CumulativeGuarantee(1e-6);
  EXPECT_NEAR(g.epsilon, RdpGaussianComposition(5.0, 4, Delta(1e-6)) + 0.5,
              1e-12);
  // The opaque claim's delta stays in the books on top of the target.
  EXPECT_NEAR(g.delta, 1e-6 + 1e-7, 1e-18);
}

TEST(RdpBackedAccountantTest, PureEpsEntersTheRenyiCurve) {
  // A pure-ε spend must cost at MOST its ε (Bun–Steinke caps the curve at
  // ε), and the claimed δ of a pure mechanism stays additive.
  const auto acct = MakeAccountant(AccountingPolicy::kRdp);
  acct->Spend(MechanismEvent::PureEps(0.3, 1e-5));
  const BudgetCharge g = acct->CumulativeGuarantee(1e-6);
  EXPECT_LE(g.epsilon, 0.3 + 0.5);  // ε plus small conversion overhead
  EXPECT_NEAR(g.delta, 1e-6 + 1e-5, 1e-15);
}

TEST(PrivacyAccountantTest, WouldExceedNeverMutates) {
  const auto acct = MakeAccountant(AccountingPolicy::kRdp);
  acct->Spend(MechanismEvent::Gaussian(0.9, 1e-5, 5.0));
  const double before = acct->CumulativeGuarantee(1e-6).epsilon;
  (void)acct->WouldExceed(MechanismEvent::Gaussian(0.9, 1e-5, 5.0, 100), 1.0,
                          1e-2);
  EXPECT_DOUBLE_EQ(acct->CumulativeGuarantee(1e-6).epsilon, before);
}

TEST(PrivacyAccountantTest, CloneIsIndependent) {
  const auto acct = MakeAccountant(AccountingPolicy::kAdvanced);
  acct->Spend(MechanismEvent::Opaque(0.1, 0.0));
  const auto clone = acct->Clone();
  clone->Spend(MechanismEvent::Opaque(0.1, 0.0));
  EXPECT_LT(acct->CumulativeGuarantee(1e-6).epsilon,
            clone->CumulativeGuarantee(1e-6).epsilon);
}

// ---------- policy-driven ledger ----------

// The event one Gaussian level-release at (ε₂, δ) claims: multiplier from
// the classic calibration at Δ = 1 (valid for ε <= 1).
MechanismEvent GaussianReleaseEvent(double eps, double delta) {
  const double m =
      ClassicGaussianSigma(Epsilon(eps), Delta(delta), L2Sensitivity(1.0));
  return MechanismEvent::Gaussian(eps, delta, m);
}

// Releases a ledger with the given policy admits before exhaustion.
int ReleasesUntilExhaustion(AccountingPolicy policy, double eps_cap,
                            double delta_cap, double eps, double delta) {
  BudgetLedger ledger(eps_cap, delta_cap, policy);
  const MechanismEvent event = GaussianReleaseEvent(eps, delta);
  int releases = 0;
  while (ledger.TryCharge(event, "release") && releases < 100000) {
    ++releases;
  }
  return releases;
}

TEST(PolicyLedgerTest, SequentialPolicyMatchesHistoricalArithmetic) {
  BudgetLedger plain(1.0, 1e-4);
  BudgetLedger policy(1.0, 1e-4, AccountingPolicy::kSequential);
  EXPECT_EQ(plain.policy(), AccountingPolicy::kSequential);
  for (int i = 0; i < 5; ++i) {
    plain.Charge(0.2, 1e-5, "slice");
    policy.Charge(0.2, 1e-5, "slice");
  }
  EXPECT_EQ(plain.epsilon_spent(), policy.epsilon_spent());
  EXPECT_EQ(plain.delta_spent(), policy.delta_spent());
  EXPECT_EQ(plain.WouldExceed(0.2, 0.0), policy.WouldExceed(0.2, 0.0));
  // AccountedGuarantee under kSequential is the naive totals, target ignored.
  const BudgetCharge g = policy.AccountedGuarantee(1e-9);
  EXPECT_EQ(g.epsilon, policy.epsilon_spent());
  EXPECT_EQ(g.delta, policy.delta_spent());
}

TEST(PolicyLedgerTest, NonSequentialPoliciesRequireDeltaHeadroom) {
  EXPECT_THROW(BudgetLedger(1.0, 0.0, AccountingPolicy::kAdvanced),
               std::invalid_argument);
  EXPECT_THROW(BudgetLedger(1.0, 0.0, AccountingPolicy::kRdp),
               std::invalid_argument);
  EXPECT_NO_THROW(BudgetLedger(1.0, 0.0, AccountingPolicy::kSequential));
  EXPECT_NO_THROW(BudgetLedger(1.0, 1e-4, AccountingPolicy::kRdp));
}

TEST(PolicyLedgerTest, RdpLedgerAdmitsMoreGaussianReleasesThanSequential) {
  const double eps_cap = 5.0;
  const double delta_cap = 1e-2;
  const int sequential = ReleasesUntilExhaustion(AccountingPolicy::kSequential,
                                                 eps_cap, delta_cap, 0.9, 1e-5);
  const int rdp = ReleasesUntilExhaustion(AccountingPolicy::kRdp, eps_cap,
                                          delta_cap, 0.9, 1e-5);
  EXPECT_EQ(sequential, 5);  // floor(5.0 / 0.9)
  EXPECT_GT(rdp, sequential);
}

TEST(PolicyLedgerTest, RdpLedgerStillExhaustsEventually) {
  const int rdp = ReleasesUntilExhaustion(AccountingPolicy::kRdp, 5.0, 1e-2,
                                          0.9, 1e-5);
  EXPECT_LT(rdp, 100000) << "the RDP curve grows linearly in k at fixed "
                            "order, so exhaustion must terminate the loop";
}

TEST(PolicyLedgerTest, AdvancedLedgerAdmitsMoreSmallChargesThanSequential) {
  const int sequential = ReleasesUntilExhaustion(
      AccountingPolicy::kSequential, 2.0, 1e-2, 0.02, 1e-7);
  const int advanced = ReleasesUntilExhaustion(AccountingPolicy::kAdvanced,
                                               2.0, 1e-2, 0.02, 1e-7);
  EXPECT_GT(advanced, sequential);
}

TEST(PolicyLedgerTest, DeniedTryChargeLeavesNonSequentialLedgerUntouched) {
  BudgetLedger ledger(1.0, 1e-2, AccountingPolicy::kRdp);
  ASSERT_TRUE(ledger.TryCharge(GaussianReleaseEvent(0.9, 1e-5), "first"));
  const double spent = ledger.epsilon_spent();
  const double accounted = ledger.AccountedSpend().epsilon;
  // A charge far past the ε cap must be denied without mutating anything.
  MechanismEvent big = GaussianReleaseEvent(0.9, 1e-5);
  big.count = 1000;
  EXPECT_FALSE(ledger.TryCharge(big, "overrun"));
  EXPECT_EQ(ledger.epsilon_spent(), spent);
  EXPECT_EQ(ledger.AccountedSpend().epsilon, accounted);
  EXPECT_EQ(ledger.charges().size(), 1u);
  EXPECT_EQ(ledger.events().size(), ledger.charges().size());
}

TEST(PolicyLedgerTest, ChargeThrowsBudgetExhaustedUnderRdpToo) {
  BudgetLedger ledger(1.0, 1e-2, AccountingPolicy::kRdp);
  MechanismEvent big = GaussianReleaseEvent(0.9, 1e-5);
  big.count = 1000;
  EXPECT_THROW(ledger.Charge(big, "too much"),
               gdp::common::BudgetExhaustedError);
  EXPECT_EQ(ledger.charges().size(), 0u);
}

TEST(PolicyLedgerTest, WouldExceedAllMatchesChargingTheBatch) {
  const std::vector<MechanismEvent> batch(8, GaussianReleaseEvent(0.9, 1e-5));
  BudgetLedger probe(3.0, 1e-2, AccountingPolicy::kRdp);
  const bool predicted = !probe.WouldExceedAll(batch);
  BudgetLedger commit(3.0, 1e-2, AccountingPolicy::kRdp);
  bool all_landed = true;
  for (const MechanismEvent& event : batch) {
    all_landed = all_landed && commit.TryCharge(event, "point");
  }
  EXPECT_EQ(predicted, all_landed)
      << "the batch pre-check must agree with charging point by point";
}

TEST(PolicyLedgerTest, AuditReportShowsPolicyAndTightenedTotals) {
  BudgetLedger ledger(10.0, 1e-2, AccountingPolicy::kRdp);
  for (int i = 0; i < 4; ++i) {
    ledger.Charge(GaussianReleaseEvent(0.9, 1e-5), "release");
  }
  const std::string report = ledger.AuditReport();
  EXPECT_NE(report.find("accounting=rdp"), std::string::npos);
  EXPECT_NE(report.find("rdp-accounted"), std::string::npos);
  EXPECT_NE(report.find("naive"), std::string::npos);
}

TEST(PolicyLedgerTest, CopyPreservesAccountantState) {
  BudgetLedger ledger(10.0, 1e-2, AccountingPolicy::kRdp);
  ledger.Charge(GaussianReleaseEvent(0.9, 1e-5), "release");
  const BudgetLedger copy = ledger;
  EXPECT_EQ(copy.policy(), AccountingPolicy::kRdp);
  EXPECT_DOUBLE_EQ(copy.AccountedGuarantee(1e-6).epsilon,
                   ledger.AccountedGuarantee(1e-6).epsilon);
  EXPECT_EQ(copy.charges().size(), 1u);
}

// ---------- the property pin ----------

// RDP cumulative ε <= sequential Σε for k >= 2 Gaussian mechanisms, across
// an (m, k, δ) grid.  The sequential claim prices each mechanism at the
// TIGHT per-mechanism ε(δ) from the analytic Gaussian curve, so the
// comparison is against the strongest version of the naive ledger.
TEST(RdpVsSequentialPropertyTest, RdpEpsilonAtMostSequentialSumOnGrid) {
  for (const double m : {2.0, 5.0, 10.0}) {
    for (const int k : {2, 4, 8, 16}) {
      for (const double delta : {1e-5, 1e-6, 1e-7}) {
        // Tight per-mechanism epsilon at this δ: invert the Balle–Wang curve
        // by bisection (δ(ε) is decreasing in ε).
        double lo = 1e-6;
        double hi = 50.0;
        for (int it = 0; it < 100; ++it) {
          const double mid = 0.5 * (lo + hi);
          if (GaussianDeltaForSigma(m, Epsilon(mid), L2Sensitivity(1.0)) >
              delta) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        const double per_mechanism_eps = hi;
        const double sequential_sum = per_mechanism_eps * k;
        const double rdp_eps = RdpGaussianComposition(m, k, Delta(delta));
        EXPECT_LE(rdp_eps, sequential_sum)
            << "m=" << m << " k=" << k << " delta=" << delta;
        // And strictly below once several mechanisms compose — the whole
        // point of the policy (allow a hair of slack at tiny k).
        if (k >= 4) {
          EXPECT_LT(rdp_eps, sequential_sum * 0.95)
              << "m=" << m << " k=" << k << " delta=" << delta;
        }
      }
    }
  }
}

}  // namespace
}  // namespace gdp::dp
