#include "dp/rdp_accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dp/gaussian.hpp"

namespace gdp::dp {
namespace {

TEST(RdpAccountantTest, RejectsBadOrders) {
  EXPECT_THROW(RdpAccountant(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{0.5}), std::invalid_argument);
}

TEST(RdpAccountantTest, RejectsBadInputs) {
  RdpAccountant a;
  EXPECT_THROW(a.AddGaussian(0.0), std::invalid_argument);
  EXPECT_THROW(a.AddGaussians(1.0, 0), std::invalid_argument);
}

TEST(RdpAccountantTest, EmptyAccountantHasTinyEpsilon) {
  const RdpAccountant a;
  // No mechanisms: epsilon should collapse to ~0 (only conversion slack).
  EXPECT_LT(a.EpsilonFor(Delta(1e-5)), 0.5);
}

TEST(RdpAccountantTest, GaussianRdpCurveIsAlphaOverTwoMSquared) {
  RdpAccountant a(std::vector<double>{2.0, 10.0});
  a.AddGaussian(3.0);
  EXPECT_NEAR(a.rdp()[0], 2.0 / (2.0 * 9.0), 1e-12);
  EXPECT_NEAR(a.rdp()[1], 10.0 / (2.0 * 9.0), 1e-12);
}

TEST(RdpAccountantTest, CompositionAddsLinearly) {
  RdpAccountant once;
  once.AddGaussians(2.0, 10);
  RdpAccountant tenfold;
  for (int i = 0; i < 10; ++i) {
    tenfold.AddGaussian(2.0);
  }
  for (std::size_t i = 0; i < once.rdp().size(); ++i) {
    EXPECT_NEAR(once.rdp()[i], tenfold.rdp()[i], 1e-12);
  }
}

TEST(RdpAccountantTest, SingleGaussianConsistentWithAnalyticCurve) {
  // One Gaussian with multiplier m: the RDP-derived epsilon at delta must be
  // close to (and not much larger than) the exact analytic epsilon.
  const double m = 5.0;  // sigma / Delta
  const Delta delta(1e-6);
  const double rdp_eps = RdpGaussianComposition(m, 1, delta);
  // Exact epsilon: solve via the Balle-Wang curve (sigma = m, Delta = 1).
  // Binary search on eps: delta(eps) decreasing in eps.
  double lo = 1e-6;
  double hi = 10.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDeltaForSigma(m, Epsilon(mid), L2Sensitivity(1.0)) >
        delta.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double exact_eps = hi;
  EXPECT_GE(rdp_eps, exact_eps * 0.8);  // RDP is an upper bound, near-tight
  EXPECT_LE(rdp_eps, exact_eps * 2.0);
}

TEST(RdpAccountantTest, BeatsSequentialCompositionForManyLevels) {
  // 10 Gaussian levels at multiplier m: sequential composition of the
  // per-level analytic epsilons vs RDP.
  const double m = 10.0;
  const int k = 10;
  const Delta delta(1e-5);
  // Per-level epsilon at delta/k each (so sequential totals delta too).
  double lo = 1e-6;
  double hi = 10.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDeltaForSigma(m, Epsilon(mid), L2Sensitivity(1.0)) >
        delta.value() / k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double sequential_total = hi * k;
  const double rdp_total = RdpGaussianComposition(m, k, delta);
  EXPECT_LT(rdp_total, sequential_total);
}

TEST(RdpAccountantTest, PureDpCurveBoundedByEpsilon) {
  RdpAccountant a(std::vector<double>{1.5, 100.0});
  a.AddPureDp(Epsilon(0.3));
  EXPECT_LE(a.rdp()[0], 0.3 + 1e-12);
  EXPECT_LE(a.rdp()[1], 0.3 + 1e-12);
  // Small alpha: quadratic regime.
  EXPECT_NEAR(a.rdp()[0], std::min(0.3, 1.5 * 0.09 / 2.0), 1e-12);
}

TEST(RdpAccountantTest, EpsilonMonotoneInDelta) {
  RdpAccountant a;
  a.AddGaussians(2.0, 5);
  EXPECT_GT(a.EpsilonFor(Delta(1e-9)), a.EpsilonFor(Delta(1e-3)));
}

TEST(RdpAccountantTest, MoreNoiseMeansLessEpsilon) {
  EXPECT_LT(RdpGaussianComposition(10.0, 5, Delta(1e-5)),
            RdpGaussianComposition(2.0, 5, Delta(1e-5)));
}

// Regression (input-validation satellite): the raw-double EpsilonFor must
// reject δ ∉ (0, 1) — including NaN and the endpoints — with a typed error
// BEFORE the min-over-α scan, and the Delta-typed overload's constructor
// enforces the same contract, so no bad δ can reach the scan at all.
TEST(RdpAccountantTest, EpsilonForRejectsBadDeltaWithTypedError) {
  RdpAccountant a;
  a.AddGaussians(2.0, 3);
  EXPECT_THROW((void)a.EpsilonFor(0.0), std::invalid_argument);
  EXPECT_THROW((void)a.EpsilonFor(1.0), std::invalid_argument);
  EXPECT_THROW((void)a.EpsilonFor(-1e-6), std::invalid_argument);
  EXPECT_THROW((void)a.EpsilonFor(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW((void)a.EpsilonFor(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)Delta(0.0), std::invalid_argument);
  EXPECT_THROW((void)Delta(1.0), std::invalid_argument);
  EXPECT_THROW((void)Delta(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  // A good δ agrees across the two overloads.
  EXPECT_DOUBLE_EQ(a.EpsilonFor(1e-6), a.EpsilonFor(Delta(1e-6)));
}

TEST(RdpAccountantTest, NoiseMultiplierForRoundTripsAgainstEpsilonFor) {
  for (const double target : {0.5, 2.0, 8.0}) {
    for (const int k : {1, 4, 16}) {
      const Delta delta(1e-6);
      const double m = RdpAccountant::NoiseMultiplierFor(target, delta, k);
      // Safe side: the calibrated multiplier meets the target...
      EXPECT_LE(RdpGaussianComposition(m, k, delta), target)
          << "target=" << target << " k=" << k;
      // ...and is essentially tight (a hair more noise than needed only).
      EXPECT_GT(RdpGaussianComposition(m * 0.99, k, delta), target * 0.999)
          << "target=" << target << " k=" << k;
    }
  }
}

TEST(RdpAccountantTest, NoiseMultiplierForRejectsBadInputs) {
  EXPECT_THROW((void)RdpAccountant::NoiseMultiplierFor(0.0, Delta(1e-6), 4),
               std::invalid_argument);
  EXPECT_THROW((void)RdpAccountant::NoiseMultiplierFor(-1.0, Delta(1e-6), 4),
               std::invalid_argument);
  EXPECT_THROW((void)RdpAccountant::NoiseMultiplierFor(
                   std::numeric_limits<double>::infinity(), Delta(1e-6), 4),
               std::invalid_argument);
  EXPECT_THROW((void)RdpAccountant::NoiseMultiplierFor(1.0, Delta(1e-6), 0),
               std::invalid_argument);
}

TEST(RdpAccountantTest, NoiseMultiplierForGrowsWithKAndShrinksWithEpsilon) {
  const Delta delta(1e-6);
  // More releases to cover => more noise per release.
  EXPECT_GT(RdpAccountant::NoiseMultiplierFor(2.0, delta, 16),
            RdpAccountant::NoiseMultiplierFor(2.0, delta, 2));
  // A tighter epsilon target => more noise.
  EXPECT_GT(RdpAccountant::NoiseMultiplierFor(0.5, delta, 4),
            RdpAccountant::NoiseMultiplierFor(4.0, delta, 4));
}

}  // namespace
}  // namespace gdp::dp
