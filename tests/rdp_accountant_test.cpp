#include "dp/rdp_accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/gaussian.hpp"

namespace gdp::dp {
namespace {

TEST(RdpAccountantTest, RejectsBadOrders) {
  EXPECT_THROW(RdpAccountant(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{0.5}), std::invalid_argument);
}

TEST(RdpAccountantTest, RejectsBadInputs) {
  RdpAccountant a;
  EXPECT_THROW(a.AddGaussian(0.0), std::invalid_argument);
  EXPECT_THROW(a.AddGaussians(1.0, 0), std::invalid_argument);
}

TEST(RdpAccountantTest, EmptyAccountantHasTinyEpsilon) {
  const RdpAccountant a;
  // No mechanisms: epsilon should collapse to ~0 (only conversion slack).
  EXPECT_LT(a.EpsilonFor(Delta(1e-5)), 0.5);
}

TEST(RdpAccountantTest, GaussianRdpCurveIsAlphaOverTwoMSquared) {
  RdpAccountant a(std::vector<double>{2.0, 10.0});
  a.AddGaussian(3.0);
  EXPECT_NEAR(a.rdp()[0], 2.0 / (2.0 * 9.0), 1e-12);
  EXPECT_NEAR(a.rdp()[1], 10.0 / (2.0 * 9.0), 1e-12);
}

TEST(RdpAccountantTest, CompositionAddsLinearly) {
  RdpAccountant once;
  once.AddGaussians(2.0, 10);
  RdpAccountant tenfold;
  for (int i = 0; i < 10; ++i) {
    tenfold.AddGaussian(2.0);
  }
  for (std::size_t i = 0; i < once.rdp().size(); ++i) {
    EXPECT_NEAR(once.rdp()[i], tenfold.rdp()[i], 1e-12);
  }
}

TEST(RdpAccountantTest, SingleGaussianConsistentWithAnalyticCurve) {
  // One Gaussian with multiplier m: the RDP-derived epsilon at delta must be
  // close to (and not much larger than) the exact analytic epsilon.
  const double m = 5.0;  // sigma / Delta
  const Delta delta(1e-6);
  const double rdp_eps = RdpGaussianComposition(m, 1, delta);
  // Exact epsilon: solve via the Balle-Wang curve (sigma = m, Delta = 1).
  // Binary search on eps: delta(eps) decreasing in eps.
  double lo = 1e-6;
  double hi = 10.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDeltaForSigma(m, Epsilon(mid), L2Sensitivity(1.0)) >
        delta.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double exact_eps = hi;
  EXPECT_GE(rdp_eps, exact_eps * 0.8);  // RDP is an upper bound, near-tight
  EXPECT_LE(rdp_eps, exact_eps * 2.0);
}

TEST(RdpAccountantTest, BeatsSequentialCompositionForManyLevels) {
  // 10 Gaussian levels at multiplier m: sequential composition of the
  // per-level analytic epsilons vs RDP.
  const double m = 10.0;
  const int k = 10;
  const Delta delta(1e-5);
  // Per-level epsilon at delta/k each (so sequential totals delta too).
  double lo = 1e-6;
  double hi = 10.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDeltaForSigma(m, Epsilon(mid), L2Sensitivity(1.0)) >
        delta.value() / k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double sequential_total = hi * k;
  const double rdp_total = RdpGaussianComposition(m, k, delta);
  EXPECT_LT(rdp_total, sequential_total);
}

TEST(RdpAccountantTest, PureDpCurveBoundedByEpsilon) {
  RdpAccountant a(std::vector<double>{1.5, 100.0});
  a.AddPureDp(Epsilon(0.3));
  EXPECT_LE(a.rdp()[0], 0.3 + 1e-12);
  EXPECT_LE(a.rdp()[1], 0.3 + 1e-12);
  // Small alpha: quadratic regime.
  EXPECT_NEAR(a.rdp()[0], std::min(0.3, 1.5 * 0.09 / 2.0), 1e-12);
}

TEST(RdpAccountantTest, EpsilonMonotoneInDelta) {
  RdpAccountant a;
  a.AddGaussians(2.0, 5);
  EXPECT_GT(a.EpsilonFor(Delta(1e-9)), a.EpsilonFor(Delta(1e-3)));
}

TEST(RdpAccountantTest, MoreNoiseMeansLessEpsilon) {
  EXPECT_LT(RdpGaussianComposition(10.0, 5, Delta(1e-5)),
            RdpGaussianComposition(2.0, 5, Delta(1e-5)));
}

}  // namespace
}  // namespace gdp::dp
