#include "hier/navigation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hier/specialization.hpp"

namespace gdp::hier {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

GroupHierarchy BuildTestHierarchy(const BipartiteGraph& g, int depth = 4) {
  SpecializationConfig cfg;
  cfg.depth = depth;
  cfg.arity = 4;
  const Specializer spec(cfg);
  Rng rng(3);
  return spec.BuildHierarchy(g, rng).hierarchy;
}

TEST(HierarchyIndexTest, ChildrenPartitionEachParent) {
  Rng grng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 600, grng);
  const GroupHierarchy h = BuildTestHierarchy(g);
  const HierarchyIndex index(h);
  for (int lvl = 1; lvl <= h.depth(); ++lvl) {
    std::vector<bool> seen(h.level(lvl - 1).num_groups(), false);
    for (GroupId gid = 0; gid < h.level(lvl).num_groups(); ++gid) {
      NodeIndex child_size = 0;
      for (const GroupId c : index.Children(lvl, gid)) {
        EXPECT_FALSE(seen[c]) << "child claimed twice";
        seen[c] = true;
        child_size += h.level(lvl - 1).group(c).size;
        EXPECT_EQ(h.level(lvl - 1).group(c).side, h.level(lvl).group(gid).side);
      }
      EXPECT_EQ(child_size, h.level(lvl).group(gid).size)
          << "level " << lvl << " group " << gid;
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  }
}

TEST(HierarchyIndexTest, ChildrenBoundsChecked) {
  Rng grng(5);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(16, 16, 100, grng);
  const GroupHierarchy h = BuildTestHierarchy(g, 3);
  const HierarchyIndex index(h);
  EXPECT_THROW((void)index.Children(0, 0), std::out_of_range);
  EXPECT_THROW((void)index.Children(4, 0), std::out_of_range);
  EXPECT_THROW((void)index.Children(3, 99), std::out_of_range);
}

TEST(HierarchyIndexTest, GroupPathIsAncestorChain) {
  Rng grng(7);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 500, grng);
  const GroupHierarchy h = BuildTestHierarchy(g);
  const HierarchyIndex index(h);
  for (const NodeIndex v : {NodeIndex{0}, NodeIndex{17}, NodeIndex{63}}) {
    const auto path = index.GroupPath(Side::kLeft, v);
    ASSERT_EQ(path.size(), static_cast<std::size_t>(h.num_levels()));
    for (int lvl = 1; lvl < h.num_levels(); ++lvl) {
      // Each path element's parent is the next path element.
      EXPECT_EQ(h.level(lvl - 1).group(path[static_cast<std::size_t>(lvl - 1)]).parent,
                path[static_cast<std::size_t>(lvl)]);
    }
  }
}

TEST(HierarchyIndexTest, LowestCommonLevelSameNodeIsZero) {
  Rng grng(9);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(32, 32, 200, grng);
  const GroupHierarchy h = BuildTestHierarchy(g, 3);
  const HierarchyIndex index(h);
  EXPECT_EQ(index.LowestCommonLevel(Side::kLeft, 5, Side::kLeft, 5), 0);
}

TEST(HierarchyIndexTest, LowestCommonLevelDifferentSidesIsMinusOne) {
  Rng grng(9);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(32, 32, 200, grng);
  const GroupHierarchy h = BuildTestHierarchy(g, 3);
  const HierarchyIndex index(h);
  EXPECT_EQ(index.LowestCommonLevel(Side::kLeft, 1, Side::kRight, 1), -1);
}

TEST(HierarchyIndexTest, LowestCommonLevelConsistentWithPaths) {
  Rng grng(11);
  const BipartiteGraph g = gdp::graph::GenerateUniformRandom(64, 64, 400, grng);
  const GroupHierarchy h = BuildTestHierarchy(g);
  const HierarchyIndex index(h);
  for (NodeIndex a = 0; a < 8; ++a) {
    for (NodeIndex b = 0; b < 8; ++b) {
      const int lcl = index.LowestCommonLevel(Side::kLeft, a, Side::kLeft, b);
      ASSERT_GE(lcl, 0);
      const auto pa = index.GroupPath(Side::kLeft, a);
      const auto pb = index.GroupPath(Side::kLeft, b);
      EXPECT_EQ(pa[static_cast<std::size_t>(lcl)], pb[static_cast<std::size_t>(lcl)]);
      if (lcl > 0) {
        EXPECT_NE(pa[static_cast<std::size_t>(lcl - 1)],
                  pb[static_cast<std::size_t>(lcl - 1)]);
      }
    }
  }
}

}  // namespace
}  // namespace gdp::hier
