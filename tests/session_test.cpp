#include "core/session.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/consistency.hpp"
#include "core/pipeline.hpp"
#include "core/release_plan.hpp"
#include "graph/generators.hpp"
#include "hier/navigation.hpp"
#include "query/workload.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 500;
  p.num_right = 700;
  p.num_edges = 3000;
  return GenerateDblpLike(p, rng);
}

DisclosureConfig SmallConfig() {
  DisclosureConfig cfg;
  cfg.depth = 5;
  cfg.arity = 4;
  return cfg;
}

// ToSessionSpec() mirrors the one-shot grant (caps cover exactly one
// release); multi-release tests open with the default "audit only" caps.
SessionSpec MultiReleaseSpec(const DisclosureConfig& cfg) {
  SessionSpec spec = cfg.ToSessionSpec();
  spec.epsilon_cap = SessionSpec{}.epsilon_cap;
  spec.delta_cap = SessionSpec{}.delta_cap;
  return spec;
}

void ExpectBitIdentical(const MultiLevelRelease& a, const MultiLevelRelease& b,
                        const std::string& context) {
  ASSERT_EQ(a.num_levels(), b.num_levels()) << context;
  for (int lvl = 0; lvl < a.num_levels(); ++lvl) {
    const LevelRelease& la = a.level(lvl);
    const LevelRelease& lb = b.level(lvl);
    EXPECT_EQ(la.sensitivity, lb.sensitivity) << context << " level " << lvl;
    EXPECT_EQ(la.noise_stddev, lb.noise_stddev) << context << " level " << lvl;
    EXPECT_EQ(la.group_noise_stddev, lb.group_noise_stddev)
        << context << " level " << lvl;
    EXPECT_EQ(la.noisy_total, lb.noisy_total) << context << " level " << lvl;
    EXPECT_EQ(la.true_total, lb.true_total) << context << " level " << lvl;
    EXPECT_EQ(la.noisy_group_counts, lb.noisy_group_counts)
        << context << " level " << lvl;
  }
}

// The seed implementation of RunDisclosure, reproduced verbatim as the
// parity oracle: specializer + plan + engine composed by hand, exactly as
// the pre-session pipeline.cpp did.  The session/wrapper refactor must stay
// bit-identical to THIS, not merely to itself.
MultiLevelRelease ManualOneShot(const BipartiteGraph& graph,
                                const DisclosureConfig& config, Rng& rng) {
  const double eps_phase1 = config.epsilon_g * config.phase1_fraction;
  const double eps_phase2 = config.epsilon_g - eps_phase1;
  const int transitions = config.depth - 1;

  gdp::hier::SpecializationConfig spec;
  spec.depth = config.depth;
  spec.arity = config.arity;
  spec.epsilon_per_level =
      transitions > 0 ? eps_phase1 / static_cast<double>(transitions)
                      : eps_phase1;
  spec.quality = config.split_quality;
  spec.max_cut_candidates = config.max_cut_candidates;
  spec.validate_hierarchy = config.validate_hierarchy;

  const gdp::hier::Specializer specializer(spec);
  const auto built = specializer.BuildHierarchy(graph, rng);

  ReleaseConfig rel;
  rel.epsilon_g = eps_phase2;
  rel.delta = config.delta;
  rel.noise = config.noise;
  rel.include_group_counts = config.include_group_counts;
  rel.clamp_nonnegative = config.clamp_nonnegative;
  rel.noise_chunk_grain = config.noise_chunk_grain;

  const GroupDpEngine engine(rel);
  MultiLevelRelease release = [&] {
    if (config.num_threads == 1) {
      const ReleasePlan plan = ReleasePlan::Build(graph, built.hierarchy);
      return engine.ReleaseAll(plan, rng);
    }
    gdp::common::ThreadPool pool(config.num_threads);
    const ReleasePlan plan = ReleasePlan::Build(graph, built.hierarchy, pool);
    return engine.ParallelReleaseAll(plan, rng, pool);
  }();
  if (config.enforce_consistency) {
    release = EnforceHierarchicalConsistency(built.hierarchy, release);
  }
  return release;
}

// ---------- parity: session == one-shot == seed implementation ----------

TEST(SessionTest, WrapperMatchesSeedImplementationSequential) {
  const BipartiteGraph g = TestGraph();
  for (const std::uint64_t seed : {7u, 11u, 29u}) {
    Rng r1(seed);
    const MultiLevelRelease oracle = ManualOneShot(g, SmallConfig(), r1);
    Rng r2(seed);
    const DisclosureResult wrapped = RunDisclosure(g, SmallConfig(), r2);
    ExpectBitIdentical(oracle, wrapped.release,
                       "seed " + std::to_string(seed));
  }
}

TEST(SessionTest, WrapperMatchesSeedImplementationParallel) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.num_threads = 2;
  cfg.noise_chunk_grain = 256;  // small enough that level 0 really chunks
  Rng r1(17);
  const MultiLevelRelease oracle = ManualOneShot(g, cfg, r1);
  Rng r2(17);
  const DisclosureResult wrapped = RunDisclosure(g, cfg, r2);
  ExpectBitIdentical(oracle, wrapped.release, "parallel");
}

TEST(SessionTest, ReleaseMatchesRunDisclosureBothPaths) {
  // Satellite contract: for every (seed, config), DisclosureSession::Release
  // is bit-identical to RunDisclosure on the sequential AND parallel paths.
  const BipartiteGraph g = TestGraph();
  for (const bool parallel : {false, true}) {
    DisclosureConfig cfg = SmallConfig();
    if (parallel) {
      cfg.num_threads = 4;
      cfg.noise_chunk_grain = 256;
    }
    for (const std::uint64_t seed : {5u, 13u}) {
      Rng r1(seed);
      const DisclosureResult oneshot = RunDisclosure(g, cfg, r1);
      Rng r2(seed);
      DisclosureSession session =
          DisclosureSession::Open(g, cfg.ToSessionSpec(), r2);
      const MultiLevelRelease rel = session.Release(cfg.ToBudgetSpec(), r2);
      ExpectBitIdentical(oneshot.release, rel,
                         (parallel ? "parallel seed " : "sequential seed ") +
                             std::to_string(seed));
    }
  }
}

TEST(SessionTest, SecondReleaseWithDifferentEpsilonMatchesFreshOneShot) {
  // ε scales by powers of two with the fraction scaling inversely, so every
  // sweep point's phase-1 budget is bit-equal (0.4·0.25 == 0.8·0.125 == 0.1
  // exactly in binary) and the hierarchies coincide.
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg1 = SmallConfig();
  cfg1.epsilon_g = 0.4;
  cfg1.phase1_fraction = 0.25;
  DisclosureConfig cfg2 = SmallConfig();
  cfg2.epsilon_g = 0.8;
  cfg2.phase1_fraction = 0.125;

  Rng rs(23);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg1), rs);
  // Post-Open rng state == post-Phase-1 state of any one-shot with the same
  // seed and phase-1 budget; each release resumes from a copy of it.
  Rng r_first = rs;
  const MultiLevelRelease first = session.Release(cfg1.ToBudgetSpec(), r_first);
  Rng r_second = rs;
  const MultiLevelRelease second =
      session.Release(cfg2.ToBudgetSpec(), r_second);

  Rng rf1(23);
  const DisclosureResult fresh1 = RunDisclosure(g, cfg1, rf1);
  Rng rf2(23);
  const DisclosureResult fresh2 = RunDisclosure(g, cfg2, rf2);
  ExpectBitIdentical(first, fresh1.release, "first release");
  ExpectBitIdentical(second, fresh2.release, "second release, new eps");
}

TEST(SessionTest, SweepReleasesBitIdenticalToOneShots) {
  // Acceptance: a 4-point ε-sweep through one session, every point
  // bit-identical to the corresponding one-shot RunDisclosure.
  const BipartiteGraph g = TestGraph();
  const double eps_points[] = {0.2, 0.4, 0.8, 1.6};
  const double fractions[] = {0.5, 0.25, 0.125, 0.0625};  // phase-1 ε = 0.1

  DisclosureConfig cfg0 = SmallConfig();
  cfg0.epsilon_g = eps_points[0];
  cfg0.phase1_fraction = fractions[0];
  Rng rs(41);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg0), rs);
  for (int i = 0; i < 4; ++i) {
    DisclosureConfig cfg = SmallConfig();
    cfg.epsilon_g = eps_points[i];
    cfg.phase1_fraction = fractions[i];
    Rng r_point = rs;  // every one-shot resumes from the post-Phase-1 state
    const MultiLevelRelease rel = session.Release(cfg.ToBudgetSpec(), r_point);
    Rng r_fresh(41);
    const DisclosureResult fresh = RunDisclosure(g, cfg, r_fresh);
    ExpectBitIdentical(rel, fresh.release, "sweep point " + std::to_string(i));
  }
  // Phase 1 once + four phase-2 charges.
  EXPECT_EQ(session.ledger().charges().size(), 5u);
}

// ---------- the single-scan guarantee ----------

TEST(SessionTest, FourPointSweepPerformsExactlyOneNodeScan) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  const std::uint64_t scans_before = gdp::hier::Partition::DegreeSumScanCount();
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  std::vector<BudgetSpec> budgets;
  for (const double eps : {0.3, 0.5, 0.7, 0.9}) {
    BudgetSpec b = cfg.ToBudgetSpec();
    b.epsilon_g = eps;
    budgets.push_back(b);
  }
  const auto releases = session.Sweep(budgets, rng);
  ASSERT_EQ(releases.size(), 4u);
  for (const auto& rel : releases) {
    EXPECT_EQ(rel.num_levels(), 6);
  }
  EXPECT_EQ(gdp::hier::Partition::DegreeSumScanCount() - scans_before, 1u)
      << "a session sweep must touch the node set exactly once (plan build)";
}

TEST(SessionTest, SweepPointsCarryIndependentNoise) {
  // Same ε at two sweep positions: forked per-point streams must give
  // different draws (no noise reuse across points).
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  const std::vector<BudgetSpec> budgets(2, cfg.ToBudgetSpec());
  const auto releases = session.Sweep(budgets, rng);
  EXPECT_NE(releases[0].level(2).noisy_total, releases[1].level(2).noisy_total);
}

// ---------- guard rail: typed up-front budget rejection ----------

TEST(SessionTest, ReleaseRejectsUncalibratableBudgetUpFront) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, cfg.ToSessionSpec(), rng);
  const std::size_t charges_before = session.ledger().charges().size();
  const Rng rng_snapshot = rng;

  BudgetSpec bad = cfg.ToBudgetSpec();
  bad.epsilon_g = -1.0;
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);
  bad = cfg.ToBudgetSpec();
  bad.epsilon_g = 0.0;
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);
  bad = cfg.ToBudgetSpec();
  bad.delta = 0.0;
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);
  bad = cfg.ToBudgetSpec();
  bad.delta = 1.0;
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);
  bad = cfg.ToBudgetSpec();
  bad.phase1_fraction = 1.0;  // leaves zero phase-2 budget
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);
  bad = cfg.ToBudgetSpec();
  bad.phase1_fraction = -0.2;
  EXPECT_THROW((void)session.Release(bad, rng), gdp::common::InvalidBudgetError);

  // Rejected before any draw or charge: ledger untouched, rng untouched.
  EXPECT_EQ(session.ledger().charges().size(), charges_before);
  Rng control = rng_snapshot;
  const MultiLevelRelease after_failures =
      session.Release(cfg.ToBudgetSpec(), rng);
  DisclosureSession control_session = [&] {
    Rng open_rng(7);
    return DisclosureSession::Open(g, cfg.ToSessionSpec(), open_rng);
  }();
  const MultiLevelRelease control_release =
      control_session.Release(cfg.ToBudgetSpec(), control);
  ExpectBitIdentical(after_failures, control_release,
                     "release after rejected budgets");
}

TEST(SessionTest, SweepRejectsWholeBatchOnOneBadPoint) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, cfg.ToSessionSpec(), rng);
  std::vector<BudgetSpec> budgets(3, cfg.ToBudgetSpec());
  budgets[2].delta = -1.0;  // the LAST point is bad
  const std::size_t charges_before = session.ledger().charges().size();
  EXPECT_THROW((void)session.Sweep(budgets, rng),
               gdp::common::InvalidBudgetError);
  // Nothing was drawn or charged for the two good points either.
  EXPECT_EQ(session.ledger().charges().size(), charges_before);
}

TEST(SessionTest, InvalidBudgetErrorIsAnInvalidArgument) {
  // Pre-session callers catch std::invalid_argument; the typed error must
  // still satisfy them.
  const gdp::common::InvalidBudgetError err("x");
  const std::invalid_argument* base = &err;
  EXPECT_NE(base, nullptr);
}

// ---------- ledger across the session lifetime ----------

TEST(SessionTest, LedgerAccumulatesPerReleaseWithLabels) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  ASSERT_EQ(session.ledger().charges().size(), 1u);  // phase 1
  EXPECT_NE(session.ledger().charges()[0].label.find("phase1"),
            std::string::npos);
  (void)session.Release(cfg.ToBudgetSpec(), rng);
  (void)session.Release(cfg.ToBudgetSpec(), rng, "custom audit label");
  ASSERT_EQ(session.ledger().charges().size(), 3u);
  EXPECT_EQ(session.ledger().charges()[2].label, "custom audit label");
  EXPECT_EQ(session.num_releases(), 2);
  const double expected =
      session.phase1_epsilon_spent() + 2.0 * cfg.ToBudgetSpec().phase2_epsilon();
  EXPECT_NEAR(session.ledger().epsilon_spent(), expected, 1e-12);
}

TEST(SessionTest, ReleaseBeyondSessionCapThrowsBeforeDrawing) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  SessionSpec spec = cfg.ToSessionSpec();
  // Grant covers phase 1 plus exactly one release.
  spec.epsilon_cap =
      spec.budget.phase1_epsilon() + spec.budget.phase2_epsilon();
  Rng rng(7);
  DisclosureSession session = DisclosureSession::Open(g, spec, rng);
  (void)session.Release(rng);
  const Rng rng_snapshot = rng;
  EXPECT_THROW((void)session.Release(rng), gdp::common::BudgetExhaustedError);
  // The over-cap attempt drew nothing.
  Rng expected = rng_snapshot;
  EXPECT_EQ(rng(), expected());
}

TEST(SessionTest, SweepBeyondGrantRejectsWholeBatchAtomically) {
  // A sweep the session grant cannot cover must fail BEFORE the first draw,
  // not mid-batch with some points already drawn and charged.
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  SessionSpec spec = cfg.ToSessionSpec();
  // Grant covers phase 1 plus two releases; ask for three.
  spec.epsilon_cap =
      spec.budget.phase1_epsilon() + 2.0 * spec.budget.phase2_epsilon();
  Rng rng(7);
  DisclosureSession session = DisclosureSession::Open(g, spec, rng);
  const std::vector<BudgetSpec> budgets(3, cfg.ToBudgetSpec());
  const std::size_t charges_before = session.ledger().charges().size();
  const Rng rng_snapshot = rng;
  EXPECT_THROW((void)session.Sweep(budgets, rng),
               gdp::common::BudgetExhaustedError);
  EXPECT_EQ(session.ledger().charges().size(), charges_before);
  Rng expected = rng_snapshot;
  EXPECT_EQ(rng(), expected());
  // The two-point sweep the grant covers still goes through.
  const std::vector<BudgetSpec> affordable(2, cfg.ToBudgetSpec());
  EXPECT_EQ(session.Sweep(affordable, rng).size(), 2u);
}

TEST(SessionTest, AnswerLabelsAreUniquePerCall) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  gdp::query::Workload workload;
  workload.Add(std::make_unique<gdp::query::AssociationCountQuery>());
  (void)session.Answer(workload, 2, cfg.ToBudgetSpec(), rng);
  (void)session.Answer(workload, 2, cfg.ToBudgetSpec(), rng);
  const auto& charges = session.ledger().charges();
  ASSERT_EQ(charges.size(), 3u);
  EXPECT_NE(charges[1].label.find("answer[0]"), std::string::npos);
  EXPECT_NE(charges[2].label.find("answer[1]"), std::string::npos);
}

TEST(SessionTest, SweepLabelsAreSweepTagged) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  std::vector<BudgetSpec> budgets(2, cfg.ToBudgetSpec());
  (void)session.Sweep(budgets, rng);
  const auto& charges = session.ledger().charges();
  ASSERT_EQ(charges.size(), 3u);
  EXPECT_NE(charges[1].label.find("sweep[0]"), std::string::npos);
  EXPECT_NE(charges[2].label.find("sweep[1]"), std::string::npos);
}

// ---------- drilldown / workload / post-processing through the session ----

TEST(SessionTest, DrilldownMatchesDirectDrillDown) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(31);
  DisclosureSession session =
      DisclosureSession::Open(g, cfg.ToSessionSpec(), rng);
  const MultiLevelRelease rel = session.Release(rng);
  const auto via_session =
      session.Drilldown(rel, gdp::graph::Side::kLeft, 42, 5, 1);
  const gdp::hier::HierarchyIndex index(session.hierarchy());
  const auto direct = DrillDown(rel, index, gdp::graph::Side::kLeft, 42, 5, 1);
  ASSERT_EQ(via_session.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_session[i].level, direct[i].level);
    EXPECT_EQ(via_session[i].group, direct[i].group);
    EXPECT_EQ(via_session[i].noisy_count, direct[i].noisy_count);
  }
}

TEST(SessionTest, AnswerMatchesWorkloadRunAndChargesLedger) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(37);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  gdp::query::Workload workload;
  workload.Add(std::make_unique<gdp::query::AssociationCountQuery>())
      .Add(std::make_unique<gdp::query::DegreeHistogramQuery>(
          gdp::graph::Side::kLeft, 20));

  const BudgetSpec budget = cfg.ToBudgetSpec();
  Rng r_direct = rng;
  const auto direct =
      workload.Run(g, session.hierarchy().level(2), budget.noise,
                   budget.phase2_epsilon(), budget.delta, r_direct);
  const std::size_t charges_before = session.ledger().charges().size();
  const auto via_session = session.Answer(workload, 2, budget, rng);
  ASSERT_EQ(via_session.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_session[i].noisy, direct[i].noisy) << "query " << i;
  }
  ASSERT_EQ(session.ledger().charges().size(), charges_before + 1);
  const auto& charge = session.ledger().charges().back();
  EXPECT_DOUBLE_EQ(charge.epsilon, 2.0 * budget.phase2_epsilon());
  EXPECT_DOUBLE_EQ(charge.delta, 2.0 * budget.delta);
}

TEST(SessionTest, AnswerRejectsBadLevelWithoutChargingLedger) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  gdp::query::Workload workload;
  workload.Add(std::make_unique<gdp::query::AssociationCountQuery>());
  const std::size_t charges_before = session.ledger().charges().size();
  EXPECT_THROW((void)session.Answer(workload, 99, cfg.ToBudgetSpec(), rng),
               std::out_of_range);
  EXPECT_THROW((void)session.Answer(workload, -1, cfg.ToBudgetSpec(), rng),
               std::out_of_range);
  EXPECT_EQ(session.ledger().charges().size(), charges_before)
      << "a rejected Answer must not leave phantom spend on the ledger";
}

TEST(SessionTest, OpenRejectsBadCapsBeforePhase1) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  SessionSpec spec = cfg.ToSessionSpec();
  spec.epsilon_cap = 0.0;
  Rng rng(7);
  const Rng rng_snapshot = rng;
  EXPECT_THROW((void)DisclosureSession::Open(g, spec, rng),
               std::invalid_argument);
  spec = cfg.ToSessionSpec();
  spec.delta_cap = 1.0;
  EXPECT_THROW((void)DisclosureSession::Open(g, spec, rng),
               std::invalid_argument);
  // Rejected before Phase 1 consumed any randomness.
  Rng expected = rng_snapshot;
  EXPECT_EQ(rng(), expected());
}

TEST(SessionTest, ConsistencySessionReleasesAreConsistent) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.enforce_consistency = true;
  Rng rng(21);
  DisclosureSession session =
      DisclosureSession::Open(g, MultiReleaseSpec(cfg), rng);
  for (int i = 0; i < 2; ++i) {
    const MultiLevelRelease rel = session.Release(rng);
    EXPECT_TRUE(IsHierarchicallyConsistent(session.hierarchy(), rel, 1e-6));
  }
}

TEST(SessionTest, OpenRejectsConsistencyWithoutGroupCounts) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.enforce_consistency = true;
  cfg.include_group_counts = false;
  Rng rng(23);
  EXPECT_THROW((void)DisclosureSession::Open(g, cfg.ToSessionSpec(), rng),
               std::invalid_argument);
}

TEST(SessionTest, ParallelSessionInvariantAcrossThreadCounts) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  cfg.noise_chunk_grain = 256;
  std::vector<MultiLevelRelease> releases;
  for (const int threads : {2, 8}) {
    cfg.num_threads = threads;
    Rng rng(7);
    DisclosureSession session =
        DisclosureSession::Open(g, cfg.ToSessionSpec(), rng);
    releases.push_back(session.Release(rng));
  }
  ExpectBitIdentical(releases[0], releases[1], "2 vs 8 threads");
}

TEST(SessionTest, SessionIsMovable) {
  const BipartiteGraph g = TestGraph();
  DisclosureConfig cfg = SmallConfig();
  Rng rng(7);
  DisclosureSession session =
      DisclosureSession::Open(g, cfg.ToSessionSpec(), rng);
  DisclosureSession moved = std::move(session);
  const MultiLevelRelease rel = moved.Release(rng);
  EXPECT_EQ(rel.num_levels(), 6);
  EXPECT_EQ(moved.num_releases(), 1);
}

// ---------- spec-struct mapping ----------

TEST(SessionTest, ConfigToSpecMapsEveryField) {
  DisclosureConfig cfg;
  cfg.epsilon_g = 0.7;
  cfg.delta = 1e-6;
  cfg.phase1_fraction = 0.2;
  cfg.depth = 6;
  cfg.arity = 8;
  cfg.split_quality = gdp::hier::SplitQuality::kNodeBalance;
  cfg.max_cut_candidates = 31;
  cfg.noise = NoiseKind::kLaplace;
  cfg.include_group_counts = false;
  cfg.clamp_nonnegative = true;
  cfg.validate_hierarchy = false;
  cfg.enforce_consistency = false;
  cfg.num_threads = 3;
  cfg.noise_chunk_grain = 512;

  const SessionSpec spec = cfg.ToSessionSpec();
  EXPECT_EQ(spec.hierarchy.depth, 6);
  EXPECT_EQ(spec.hierarchy.arity, 8);
  EXPECT_EQ(spec.hierarchy.split_quality, gdp::hier::SplitQuality::kNodeBalance);
  EXPECT_EQ(spec.hierarchy.max_cut_candidates, 31);
  EXPECT_FALSE(spec.hierarchy.validate_hierarchy);
  EXPECT_DOUBLE_EQ(spec.budget.epsilon_g, 0.7);
  EXPECT_DOUBLE_EQ(spec.budget.delta, 1e-6);
  EXPECT_DOUBLE_EQ(spec.budget.phase1_fraction, 0.2);
  EXPECT_EQ(spec.budget.noise, NoiseKind::kLaplace);
  EXPECT_EQ(spec.exec.num_threads, 3);
  EXPECT_EQ(spec.exec.noise_chunk_grain, 512u);
  EXPECT_FALSE(spec.exec.include_group_counts);
  EXPECT_TRUE(spec.exec.clamp_nonnegative);
  EXPECT_FALSE(spec.exec.enforce_consistency);
  EXPECT_DOUBLE_EQ(spec.epsilon_cap, 0.7);
  EXPECT_DOUBLE_EQ(spec.delta_cap, 2e-6);
  EXPECT_DOUBLE_EQ(spec.budget.phase1_epsilon(), 0.7 * 0.2);
  EXPECT_DOUBLE_EQ(spec.budget.phase2_epsilon(), 0.7 - 0.7 * 0.2);
}

}  // namespace
}  // namespace gdp::core
