// GDPSNAP01 round-trip and hostile-input tests.
//
// The round-trip property: for random graphs at several sizes, a packed
// snapshot loads back bit-identical — every CSR column, every hierarchy
// label, every plan sum — and releases drawn from an adopted
// (hierarchy, plan) are bit-identical to releases from the fresh compile
// they replace, at 1, 2, and 8 threads.
//
// The hostile-input half treats every header/table/meta field as
// attacker-controlled: truncation, bad CRCs at all three framing layers,
// overlapping sections, out-of-file extents, unknown ids, a wrong
// byte-order sentinel, and a tampered max-sums column (which would
// mis-calibrate noise) must all throw SnapshotFormatError — never load.
#include "storage/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiled_disclosure.hpp"
#include "graph/generators.hpp"
#include "serve/session_registry.hpp"

namespace gdp::storage {
namespace {

using gdp::common::Rng;
using gdp::common::SnapshotFormatError;
using gdp::core::CompiledDisclosure;
using gdp::core::MultiLevelRelease;
using gdp::core::SessionSpec;
using gdp::graph::BipartiteGraph;
using gdp::graph::Side;

BipartiteGraph TestGraph(gdp::graph::NodeIndex left, gdp::graph::NodeIndex right,
                         gdp::graph::EdgeCount edges, std::uint64_t seed) {
  Rng rng(seed);
  gdp::graph::DblpLikeParams p;
  p.num_left = left;
  p.num_right = right;
  p.num_edges = edges;
  return GenerateDblpLike(p, rng);
}

SessionSpec SmallSpec(int threads = 1) {
  SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  spec.exec.num_threads = threads;
  return spec;
}

template <typename A, typename B>
void ExpectRangesEq(const A& a, const B& b, const char* what) {
  ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << what;
}

void ExpectGraphsBitIdentical(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.num_left(), b.num_left());
  ASSERT_EQ(a.num_right(), b.num_right());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ExpectRangesEq(a.offsets(Side::kLeft), b.offsets(Side::kLeft), "left offsets");
  ExpectRangesEq(a.adjacency(Side::kLeft), b.adjacency(Side::kLeft),
                 "left adjacency");
  ExpectRangesEq(a.offsets(Side::kRight), b.offsets(Side::kRight),
                 "right offsets");
  ExpectRangesEq(a.adjacency(Side::kRight), b.adjacency(Side::kRight),
                 "right adjacency");
}

void ExpectReleasesBitIdentical(const MultiLevelRelease& a,
                                const MultiLevelRelease& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int i = 0; i < a.num_levels(); ++i) {
    const auto& la = a.level(i);
    const auto& lb = b.level(i);
    EXPECT_EQ(la.level, lb.level);
    EXPECT_EQ(la.sensitivity, lb.sensitivity);
    EXPECT_EQ(la.noise_stddev, lb.noise_stddev);
    EXPECT_EQ(la.noisy_total, lb.noisy_total);  // bit-exact, not approx
    ExpectRangesEq(la.noisy_group_counts, lb.noisy_group_counts,
                   "noisy group counts");
  }
}

// ---------- round trips ----------

TEST(SnapshotTest, GraphOnlyRoundTripBitIdenticalAtSeveralSizes) {
  struct Size {
    gdp::graph::NodeIndex left, right;
    gdp::graph::EdgeCount edges;
  };
  const Size sizes[] = {{17, 23, 64}, {400, 500, 2500}, {1200, 900, 9000}};
  std::uint64_t seed = 1;
  for (const Size& s : sizes) {
    const auto graph = TestGraph(s.left, s.right, s.edges, seed++);
    SnapshotContents contents;
    contents.graph = &graph;
    auto snap = Snapshot::Parse(Buffer::FromBytes(SerializeSnapshot(contents)));
    EXPECT_FALSE(snap->has_hierarchy());
    EXPECT_FALSE(snap->has_plan());
    ExpectGraphsBitIdentical(snap->graph(), graph);
  }
}

TEST(SnapshotTest, FileRoundTripLoadsViaMmap) {
  const auto graph = TestGraph(300, 400, 2000, 5);
  SnapshotContents contents;
  contents.graph = &graph;
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdp_snapshot_test.gdps")
          .string();
  WriteSnapshotFile(path, contents);
  auto snap = Snapshot::Load(path);
  EXPECT_TRUE(snap->mapped());
  ExpectGraphsBitIdentical(snap->graph(), graph);
  // A graph copied out of the snapshot stays valid after the Snapshot dies:
  // its borrowed columns co-own the mapping.
  BipartiteGraph copy = snap->graph();
  snap.reset();
  ExpectGraphsBitIdentical(copy, graph);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CompiledRoundTripPlanAndHierarchyBitIdentical) {
  const auto graph = TestGraph(400, 500, 2500, 3);
  const SessionSpec spec = SmallSpec();
  const std::uint64_t compile_seed = 7;
  Rng rng(compile_seed);
  const auto compiled = CompiledDisclosure::Compile(graph, spec, rng);

  SnapshotContents contents;
  contents.graph = &graph;
  contents.hierarchy = &compiled->hierarchy();
  contents.plan = &compiled->plan();
  contents.phase1_epsilon_spent = compiled->phase1_epsilon_spent();
  contents.fingerprint =
      gdp::serve::SessionRegistry::Fingerprint(spec, compile_seed);

  auto snap = Snapshot::Parse(Buffer::FromBytes(SerializeSnapshot(contents)));
  ASSERT_TRUE(snap->has_hierarchy());
  ASSERT_TRUE(snap->has_plan());
  EXPECT_EQ(snap->fingerprint(), contents.fingerprint);
  EXPECT_EQ(snap->phase1_epsilon_spent(), compiled->phase1_epsilon_spent());

  ExpectRangesEq(snap->plan().FlatSums(), compiled->plan().FlatSums(),
                 "plan sums");
  ExpectRangesEq(snap->plan().LevelOffsets(), compiled->plan().LevelOffsets(),
                 "plan level offsets");
  ExpectRangesEq(snap->plan().LevelSensitivities(),
                 compiled->plan().LevelSensitivities(), "plan sensitivities");

  const auto hierarchy = snap->BuildHierarchy();
  ASSERT_EQ(hierarchy.num_levels(), compiled->hierarchy().num_levels());
  for (int l = 0; l < hierarchy.num_levels(); ++l) {
    const auto& got = hierarchy.level(l);
    const auto& want = compiled->hierarchy().level(l);
    ASSERT_EQ(got.num_groups(), want.num_groups()) << "level " << l;
    ExpectRangesEq(got.labels(gdp::hier::Side::kLeft),
                   want.labels(gdp::hier::Side::kLeft), "left labels");
    ExpectRangesEq(got.labels(gdp::hier::Side::kRight),
                   want.labels(gdp::hier::Side::kRight), "right labels");
  }
}

TEST(SnapshotTest, AdoptedPlanReleasesBitIdenticalAcrossThreadCounts) {
  const auto graph = TestGraph(400, 500, 2500, 11);
  for (const int threads : {1, 2, 8}) {
    const SessionSpec spec = SmallSpec(threads);
    const std::uint64_t compile_seed = 13;
    Rng compile_rng(compile_seed);
    const auto compiled = CompiledDisclosure::Compile(graph, spec, compile_rng);

    SnapshotContents contents;
    contents.graph = &graph;
    contents.hierarchy = &compiled->hierarchy();
    contents.plan = &compiled->plan();
    contents.phase1_epsilon_spent = compiled->phase1_epsilon_spent();
    contents.fingerprint =
        gdp::serve::SessionRegistry::Fingerprint(spec, compile_seed);
    auto snap = Snapshot::Parse(Buffer::FromBytes(SerializeSnapshot(contents)));

    const auto adopted = CompiledDisclosure::FromPrecompiled(
        snap->graph(), spec, snap->BuildHierarchy(),
        gdp::core::ReleasePlan(snap->plan()), snap->phase1_epsilon_spent());

    // Same budget sweep, same per-release Rng state: the adopted artifact
    // must be indistinguishable bit-for-bit from the fresh compile.
    for (const double eps : {0.3, 0.7, 1.5}) {
      gdp::core::BudgetSpec budget = spec.budget;
      budget.epsilon_g = eps;
      Rng rng_a(999);
      Rng rng_b(999);
      ExpectReleasesBitIdentical(adopted->Release(budget, rng_a),
                                 compiled->Release(budget, rng_b));
    }
  }
}

// ---------- hostile inputs ----------

// Byte-level accessors for tampering with a serialized snapshot.  Layout
// (docs/FORMATS.md): header magic@0(10B) version@10(u16) sentinel@12(u32)
// section_count@16(u32) file_size@24(u64) table_crc@32(u32) header_crc@36
// (u32, over bytes [0,36)); table at 48, 32-byte entries: id@+0 offset@+8
// (u64) length@+16(u64) crc@+24(u32).
constexpr std::size_t kHeaderSize = 48;
constexpr std::size_t kEntrySize = 32;

std::uint32_t ReadU32(const std::vector<std::byte>& b, std::size_t pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, b.data() + pos, sizeof(v));
  return v;
}

std::uint64_t ReadU64(const std::vector<std::byte>& b, std::size_t pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + pos, sizeof(v));
  return v;
}

void WriteU32(std::vector<std::byte>& b, std::size_t pos, std::uint32_t v) {
  std::memcpy(b.data() + pos, &v, sizeof(v));
}

void WriteU64(std::vector<std::byte>& b, std::size_t pos, std::uint64_t v) {
  std::memcpy(b.data() + pos, &v, sizeof(v));
}

std::string_view SvOf(const std::vector<std::byte>& b, std::size_t pos,
                      std::size_t len) {
  return {reinterpret_cast<const char*>(b.data()) + pos, len};
}

// Recompute the table CRC and header CRC after tampering with the section
// table (per-section CRCs are the caller's job).
void SealFramingCrcs(std::vector<std::byte>& b) {
  const std::uint32_t count = ReadU32(b, 16);
  WriteU32(b, 32, gdp::common::Crc32(SvOf(b, kHeaderSize, count * kEntrySize)));
  WriteU32(b, 36, gdp::common::Crc32(SvOf(b, 0, 36)));
}

// Position of the table entry whose section id is `id` (asserts it exists).
std::size_t FindEntry(const std::vector<std::byte>& b, std::uint32_t id) {
  const std::uint32_t count = ReadU32(b, 16);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t pos = kHeaderSize + i * kEntrySize;
    if (ReadU32(b, pos) == id) {
      return pos;
    }
  }
  ADD_FAILURE() << "section id " << id << " not found";
  return 0;
}

std::vector<std::byte> PackedGraphBytes() {
  static const auto graph = TestGraph(60, 80, 400, 21);
  SnapshotContents contents;
  contents.graph = &graph;
  return SerializeSnapshot(contents);
}

void ExpectRejected(std::vector<std::byte> bytes) {
  EXPECT_THROW((void)Snapshot::Parse(Buffer::FromBytes(std::move(bytes))),
               SnapshotFormatError);
}

TEST(SnapshotHostileTest, WellFormedBaselineLoads) {
  // The tamper tests below only mean something if the untampered bytes load.
  auto snap = Snapshot::Parse(Buffer::FromBytes(PackedGraphBytes()));
  EXPECT_EQ(snap->graph().num_left(), 60u);
}

TEST(SnapshotHostileTest, TruncatedFileRejected) {
  auto bytes = PackedGraphBytes();
  auto torn = bytes;
  torn.resize(bytes.size() - 1);
  ExpectRejected(std::move(torn));
  auto stub = bytes;
  stub.resize(20);  // shorter than the header
  ExpectRejected(std::move(stub));
  bytes.resize(kHeaderSize);  // header only, every section past EOF
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, BadMagicRejected) {
  auto bytes = PackedGraphBytes();
  bytes[0] = std::byte{'X'};
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, WrongEndiannessSentinelRejected) {
  auto bytes = PackedGraphBytes();
  // A big-endian writer would store the sentinel byte-swapped.
  const std::uint32_t sentinel = ReadU32(bytes, 12);
  WriteU32(bytes, 12, __builtin_bswap32(sentinel));
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, BadHeaderCrcRejected) {
  auto bytes = PackedGraphBytes();
  WriteU32(bytes, 36, ReadU32(bytes, 36) ^ 0xDEADBEEFu);
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, BadTableCrcRejected) {
  auto bytes = PackedGraphBytes();
  // Corrupt a table byte without resealing: the table CRC must catch it.
  bytes[kHeaderSize + 8] ^= std::byte{0x01};
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, BadSectionCrcRejected) {
  auto bytes = PackedGraphBytes();
  const std::size_t entry = FindEntry(bytes, 2);  // left offsets
  const auto offset = static_cast<std::size_t>(ReadU64(bytes, entry + 8));
  bytes[offset] ^= std::byte{0xFF};
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, OverlappingSectionsRejected) {
  auto bytes = PackedGraphBytes();
  // Point section 3 at section 2's extent (same CRC so the per-section
  // check passes); the overlap scan must reject the aliased payload.
  const std::size_t src = FindEntry(bytes, 2);
  const std::size_t dst = FindEntry(bytes, 3);
  WriteU64(bytes, dst + 8, ReadU64(bytes, src + 8));
  WriteU64(bytes, dst + 16, ReadU64(bytes, src + 16));
  WriteU32(bytes, dst + 24, ReadU32(bytes, src + 24));
  SealFramingCrcs(bytes);
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, SectionBeyondEofRejected) {
  auto bytes = PackedGraphBytes();
  const std::size_t entry = FindEntry(bytes, 2);
  WriteU64(bytes, entry + 8, 1u << 20);  // 64-aligned, far past EOF
  SealFramingCrcs(bytes);
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, UnknownSectionIdRejected) {
  auto bytes = PackedGraphBytes();
  WriteU32(bytes, FindEntry(bytes, 1), 99);
  SealFramingCrcs(bytes);
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, HugeDeclaredCountRejectedBeforeAllocation) {
  auto bytes = PackedGraphBytes();
  const std::size_t entry = FindEntry(bytes, 1);  // graph meta
  const auto offset = static_cast<std::size_t>(ReadU64(bytes, entry + 8));
  // Claim 2^32-1 left nodes: the offsets section is nowhere near big enough,
  // and the loader must reject from section LENGTHS, not allocate 32 GiB.
  WriteU32(bytes, offset, 0xFFFFFFFFu);
  WriteU32(bytes, entry + 24, gdp::common::Crc32(SvOf(bytes, offset, 16)));
  SealFramingCrcs(bytes);
  ExpectRejected(std::move(bytes));
}

TEST(SnapshotHostileTest, TamperedMaxSumsRejected) {
  const auto graph = TestGraph(100, 120, 700, 31);
  const SessionSpec spec = SmallSpec();
  Rng rng(5);
  const auto compiled = CompiledDisclosure::Compile(graph, spec, rng);
  SnapshotContents contents;
  contents.graph = &graph;
  contents.hierarchy = &compiled->hierarchy();
  contents.plan = &compiled->plan();
  contents.phase1_epsilon_spent = compiled->phase1_epsilon_spent();
  contents.fingerprint = gdp::serve::SessionRegistry::Fingerprint(spec, 5);
  auto bytes = SerializeSnapshot(contents);

  // Inflate the stored level-0 max sum: a loader trusting it would
  // calibrate MORE noise than the data needs — wrong, but "safe"-looking.
  // The loader recomputes the max from the sums column and must reject.
  const std::size_t entry = FindEntry(bytes, 14);  // plan max sums
  const auto offset = static_cast<std::size_t>(ReadU64(bytes, entry + 8));
  const auto length = static_cast<std::size_t>(ReadU64(bytes, entry + 16));
  WriteU64(bytes, offset, ReadU64(bytes, offset) + 1);
  WriteU32(bytes, entry + 24, gdp::common::Crc32(SvOf(bytes, offset, length)));
  SealFramingCrcs(bytes);
  ExpectRejected(std::move(bytes));
}

}  // namespace
}  // namespace gdp::storage
