#include "graph/bipartite_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gdp::graph {
namespace {

BipartiteGraph SmallGraph() {
  // 3 left, 4 right; edges form a small association pattern.
  return BipartiteGraph(3, 4,
                        {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {1, 3}, {2, 3}});
}

TEST(BipartiteGraphTest, BasicCounts) {
  const BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.total_nodes(), 7u);
  EXPECT_EQ(g.num_nodes(Side::kLeft), 3u);
  EXPECT_EQ(g.num_nodes(Side::kRight), 4u);
}

TEST(BipartiteGraphTest, DegreesBothSides) {
  const BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.Degree(Side::kLeft, 0), 2u);
  EXPECT_EQ(g.Degree(Side::kLeft, 1), 3u);
  EXPECT_EQ(g.Degree(Side::kLeft, 2), 1u);
  EXPECT_EQ(g.Degree(Side::kRight, 0), 1u);
  EXPECT_EQ(g.Degree(Side::kRight, 1), 2u);
  EXPECT_EQ(g.Degree(Side::kRight, 2), 1u);
  EXPECT_EQ(g.Degree(Side::kRight, 3), 2u);
}

TEST(BipartiteGraphTest, DegreeSumsEqualEdgeCountOnBothSides) {
  const BipartiteGraph g = SmallGraph();
  for (const Side side : {Side::kLeft, Side::kRight}) {
    EdgeCount total = 0;
    for (const EdgeCount d : g.Degrees(side)) {
      total += d;
    }
    EXPECT_EQ(total, g.num_edges());
  }
}

TEST(BipartiteGraphTest, NeighborsAreCorrect) {
  const BipartiteGraph g = SmallGraph();
  const auto n1 = g.Neighbors(Side::kLeft, 1);
  std::vector<NodeIndex> v1(n1.begin(), n1.end());
  std::sort(v1.begin(), v1.end());
  EXPECT_EQ(v1, (std::vector<NodeIndex>{1, 2, 3}));

  const auto n3 = g.Neighbors(Side::kRight, 3);
  std::vector<NodeIndex> v3(n3.begin(), n3.end());
  std::sort(v3.begin(), v3.end());
  EXPECT_EQ(v3, (std::vector<NodeIndex>{1, 2}));
}

TEST(BipartiteGraphTest, MaxDegree) {
  const BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.MaxDegree(Side::kLeft), 3u);
  EXPECT_EQ(g.MaxDegree(Side::kRight), 2u);
}

TEST(BipartiteGraphTest, EdgeListRoundTrips) {
  const BipartiteGraph g = SmallGraph();
  std::vector<Edge> edges = g.EdgeList();
  std::sort(edges.begin(), edges.end());
  const std::vector<Edge> expected{{0, 0}, {0, 1}, {1, 1},
                                   {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(edges, expected);
}

TEST(BipartiteGraphTest, ParallelEdgesAreKept) {
  const BipartiteGraph g(2, 2, {{0, 0}, {0, 0}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(Side::kLeft, 0), 2u);
  EXPECT_EQ(g.Degree(Side::kRight, 0), 2u);
}

TEST(BipartiteGraphTest, EmptyGraphIsValid) {
  const BipartiteGraph g(5, 3, {});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(Side::kLeft), 0u);
  EXPECT_TRUE(g.Neighbors(Side::kLeft, 0).empty());
}

TEST(BipartiteGraphTest, ZeroNodesSideIsAllowedIfNoEdges) {
  const BipartiteGraph g(0, 0, {});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.total_nodes(), 0u);
}

TEST(BipartiteGraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(BipartiteGraph(2, 2, {{2, 0}}), std::out_of_range);
  EXPECT_THROW(BipartiteGraph(2, 2, {{0, 2}}), std::out_of_range);
}

TEST(BipartiteGraphTest, AccessorsRejectOutOfRangeNodes) {
  const BipartiteGraph g = SmallGraph();
  EXPECT_THROW((void)g.Degree(Side::kLeft, 3), std::out_of_range);
  EXPECT_THROW((void)g.Neighbors(Side::kRight, 4), std::out_of_range);
}

TEST(BipartiteGraphTest, SummaryMentionsCounts) {
  const std::string s = SmallGraph().Summary();
  EXPECT_NE(s.find("3 left"), std::string::npos);
  EXPECT_NE(s.find("4 right"), std::string::npos);
  EXPECT_NE(s.find("6 associations"), std::string::npos);
}

TEST(SideTest, OppositeAndNames) {
  EXPECT_EQ(Opposite(Side::kLeft), Side::kRight);
  EXPECT_EQ(Opposite(Side::kRight), Side::kLeft);
  EXPECT_STREQ(SideName(Side::kLeft), "left");
  EXPECT_STREQ(SideName(Side::kRight), "right");
}

TEST(BuilderTest, AddEdgeValidatesEndpoints) {
  BipartiteGraphBuilder b(2, 2);
  EXPECT_THROW(b.AddEdge(2, 0), std::out_of_range);
  EXPECT_THROW(b.AddEdge(0, 5), std::out_of_range);
}

TEST(BuilderTest, BuildsEquivalentGraph) {
  BipartiteGraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(1, 2).AddEdge(2, 3);
  EXPECT_EQ(b.num_pending_edges(), 3u);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(Side::kLeft, 1), 1u);
}

TEST(BuilderTest, DeduplicateRemovesParallelEdges) {
  BipartiteGraphBuilder b(2, 2);
  b.AddEdge(0, 0).AddEdge(0, 0).AddEdge(0, 1).AddEdge(0, 0);
  b.DeduplicateEdges();
  EXPECT_EQ(b.num_pending_edges(), 2u);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuilderTest, AddEdgesSpan) {
  BipartiteGraphBuilder b(3, 3);
  const std::vector<Edge> edges{{0, 1}, {1, 1}, {2, 2}};
  b.AddEdges(edges);
  EXPECT_EQ(b.num_pending_edges(), 3u);
}

}  // namespace
}  // namespace gdp::graph
