// Session-level accounting: the AccountingPolicy knob on SessionSpec, the
// mechanism events Release/Sweep/Answer thread into the ledger, and the
// acceptance pin — a tenant composing >= 8 Gaussian level-releases under
// kRdp reports a cumulative ε at δ = 1e-6 strictly below the sequential
// ledger's Σε, while kSequential stays bit-identical to the default.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "dp/privacy_accountant.hpp"
#include "dp/rdp_accountant.hpp"
#include "graph/generators.hpp"
#include "query/query.hpp"
#include "query/workload.hpp"

namespace gdp::core {
namespace {

using gdp::common::Rng;
using gdp::dp::AccountingPolicy;
using gdp::dp::MechanismEvent;
using gdp::graph::BipartiteGraph;

BipartiteGraph TestGraph() {
  Rng rng(3);
  gdp::graph::DblpLikeParams p;
  p.num_left = 400;
  p.num_right = 500;
  p.num_edges = 2500;
  return GenerateDblpLike(p, rng);
}

SessionSpec SpecWithPolicy(AccountingPolicy policy) {
  SessionSpec spec;
  spec.hierarchy.depth = 5;
  spec.hierarchy.arity = 4;
  spec.accounting = policy;
  // Real caps so exhaustion is reachable, with δ headroom for conversion.
  spec.epsilon_cap = 100.0;
  spec.delta_cap = 1e-2;
  return spec;
}

TEST(SessionAccountingTest, ReleaseChargesAGaussianEventWithMultiplier) {
  const BipartiteGraph graph = TestGraph();
  Rng rng(11);
  DisclosureSession session =
      DisclosureSession::Open(graph, SpecWithPolicy(AccountingPolicy::kRdp), rng);
  (void)session.Release(rng);
  const auto& events = session.ledger().events();
  ASSERT_EQ(events.size(), 2u);  // phase-1 + one release
  EXPECT_EQ(events[0].kind, MechanismEvent::Kind::kPureEps);
  EXPECT_EQ(events[1].kind, MechanismEvent::Kind::kGaussian);
  EXPECT_GT(events[1].noise_multiplier, 0.0);
  // The charge spans every hierarchy level (the parallel-block width).
  EXPECT_EQ(events[1].parallel_width, session.hierarchy().num_levels());
  // The claimed (ε, δ) is exactly what the sequential ledger recorded.
  EXPECT_EQ(events[1].epsilon, session.spec().budget.phase2_epsilon());
  EXPECT_EQ(events[1].delta, session.spec().budget.delta);
}

// THE acceptance pin: >= 8 Gaussian level-releases under kRdp report a
// cumulative ε at δ = 1e-6 strictly below the naive Σε.
TEST(SessionAccountingTest, RdpTightensEightGaussianReleasesAtDelta1e6) {
  const BipartiteGraph graph = TestGraph();
  Rng rng(17);
  DisclosureSession session =
      DisclosureSession::Open(graph, SpecWithPolicy(AccountingPolicy::kRdp), rng);
  for (int i = 0; i < 8; ++i) {
    (void)session.Release(rng);
  }
  const double naive_sum = session.ledger().epsilon_spent();
  const gdp::dp::BudgetCharge tightened =
      session.ledger().AccountedGuarantee(1e-6);
  EXPECT_LT(tightened.epsilon, naive_sum)
      << "RDP composition of 8 Gaussian releases must beat the sequential "
       "ledger's Σε at δ = 1e-6";
  // All-Gaussian (plus a pure-ε phase 1) sessions carry no basic δ claims:
  // the whole δ budget is the conversion target itself.
  EXPECT_DOUBLE_EQ(tightened.delta, 1e-6);
  EXPECT_LT(tightened.delta, session.ledger().delta_spent())
      << "the tightened guarantee's δ at 1e-6 also beats the naive Σδ";
}

TEST(SessionAccountingTest, PoliciesNeverChangeTheReleasedValues) {
  // Accounting is bookkeeping over the charges; the noise drawn must be
  // bit-identical whatever the policy.
  const BipartiteGraph graph = TestGraph();
  std::vector<double> totals;
  for (const AccountingPolicy policy :
       {AccountingPolicy::kSequential, AccountingPolicy::kAdvanced,
        AccountingPolicy::kRdp}) {
    Rng rng(23);
    DisclosureSession session =
        DisclosureSession::Open(graph, SpecWithPolicy(policy), rng);
    const MultiLevelRelease release = session.Release(rng);
    totals.push_back(release.level(2).noisy_total);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
}

TEST(SessionAccountingTest, SequentialPolicyLedgerMatchesDefaultExactly) {
  const BipartiteGraph graph = TestGraph();
  Rng rng_a(29);
  Rng rng_b(29);
  SessionSpec default_spec = SpecWithPolicy(AccountingPolicy::kSequential);
  SessionSpec explicit_spec = default_spec;
  DisclosureSession a = DisclosureSession::Open(graph, default_spec, rng_a);
  DisclosureSession b = DisclosureSession::Open(graph, explicit_spec, rng_b);
  for (int i = 0; i < 3; ++i) {
    (void)a.Release(rng_a);
    (void)b.Release(rng_b);
  }
  EXPECT_EQ(a.ledger().epsilon_spent(), b.ledger().epsilon_spent());
  EXPECT_EQ(a.ledger().delta_spent(), b.ledger().delta_spent());
  EXPECT_EQ(a.ledger().AuditReport(), b.ledger().AuditReport());
}

TEST(SessionAccountingTest, RdpSessionOutlastsSequentialSession) {
  // Same grant, same requests: the RDP handle must admit strictly more
  // releases before TryRelease starts denying.
  const BipartiteGraph graph = TestGraph();
  auto count_releases = [&graph](AccountingPolicy policy) {
    SessionSpec spec = SpecWithPolicy(policy);
    spec.epsilon_cap = 5.0;
    spec.delta_cap = 1e-2;
    Rng rng(31);
    DisclosureSession session = DisclosureSession::Open(graph, spec, rng);
    int granted = 0;
    while (granted < 10000 &&
           session.TryRelease(spec.budget, rng).has_value()) {
      ++granted;
    }
    return granted;
  };
  const int sequential = count_releases(AccountingPolicy::kSequential);
  const int rdp = count_releases(AccountingPolicy::kRdp);
  EXPECT_GT(rdp, sequential);
  EXPECT_LT(rdp, 10000) << "an RDP grant must still exhaust";
}

TEST(SessionAccountingTest, SweepBatchPrecheckUsesThePolicy) {
  // A sweep the naive Σε arithmetic would reject can be admissible under
  // kRdp: 8 points at ε_g ≈ 1 against an ε cap of 5.
  const BipartiteGraph graph = TestGraph();
  SessionSpec spec = SpecWithPolicy(AccountingPolicy::kRdp);
  spec.epsilon_cap = 5.0;
  spec.delta_cap = 1e-2;
  Rng rng(37);
  DisclosureSession session = DisclosureSession::Open(graph, spec, rng);
  const std::vector<BudgetSpec> points(8, spec.budget);
  const auto releases = session.Sweep(points, rng);
  EXPECT_EQ(releases.size(), 8u);
  EXPECT_GT(session.ledger().epsilon_spent(), spec.epsilon_cap)
      << "the naive Σε exceeding the cap while the sweep is granted is "
       "exactly the RDP win";
  // The same sweep under the sequential policy is rejected atomically.
  SessionSpec seq_spec = spec;
  seq_spec.accounting = AccountingPolicy::kSequential;
  Rng seq_rng(37);
  DisclosureSession seq_session =
      DisclosureSession::Open(graph, seq_spec, seq_rng);
  EXPECT_THROW((void)seq_session.Sweep(points, seq_rng),
               gdp::common::BudgetExhaustedError);
}

TEST(SessionAccountingTest, AnswerThreadsWorkloadSizedEvent) {
  const BipartiteGraph graph = TestGraph();
  SessionSpec spec = SpecWithPolicy(AccountingPolicy::kRdp);
  Rng rng(41);
  DisclosureSession session = DisclosureSession::Open(graph, spec, rng);
  gdp::query::Workload workload;
  workload.Add(std::make_unique<gdp::query::AssociationCountQuery>());
  workload.Add(std::make_unique<gdp::query::GroupCountQuery>(
      session.hierarchy().level(1)));
  (void)session.Answer(workload, 1, spec.budget, rng);
  const auto& events = session.ledger().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].count, 2);
  EXPECT_EQ(events[1].kind, MechanismEvent::Kind::kGaussian);
  // Naive books match the historical k·(ε, δ) charge.
  EXPECT_EQ(session.ledger().charges()[1].epsilon,
            2.0 * spec.budget.phase2_epsilon());
}

TEST(SessionAccountingTest, CompileRejectsRdpWithoutDeltaHeadroom) {
  const BipartiteGraph graph = TestGraph();
  SessionSpec spec = SpecWithPolicy(AccountingPolicy::kRdp);
  spec.delta_cap = 0.0;
  Rng rng(43);
  EXPECT_THROW((void)DisclosureSession::Open(graph, spec, rng),
               std::invalid_argument);
}

TEST(SessionAccountingTest, PerTenantAttachPolicyOverridesTheSpecDefault) {
  const BipartiteGraph graph = TestGraph();
  Rng rng(47);
  const auto compiled = CompiledDisclosure::Compile(
      graph, SpecWithPolicy(AccountingPolicy::kSequential), rng);
  DisclosureSession rdp_tenant = DisclosureSession::Attach(
      compiled, 5.0, 1e-2, AccountingPolicy::kRdp);
  DisclosureSession seq_tenant = DisclosureSession::Attach(compiled, 5.0, 1e-2);
  EXPECT_EQ(rdp_tenant.ledger().policy(), AccountingPolicy::kRdp);
  EXPECT_EQ(seq_tenant.ledger().policy(), AccountingPolicy::kSequential);
}

TEST(SessionAccountingTest, StrictLevelChargingMultipliesTheWidthBackIn) {
  // The strict knob (docs/ACCOUNTING.md's cross-level caveat) must change
  // what a release CHARGES — num_levels sequential mechanisms instead of one
  // parallel-composed event — and NOTHING about what it releases.
  const BipartiteGraph graph = TestGraph();
  SessionSpec loose_spec = SpecWithPolicy(AccountingPolicy::kSequential);
  SessionSpec strict_spec = loose_spec;
  strict_spec.strict_level_charging = true;

  Rng loose_rng(11);
  Rng strict_rng(11);
  DisclosureSession loose = DisclosureSession::Open(graph, loose_spec, loose_rng);
  DisclosureSession strict =
      DisclosureSession::Open(graph, strict_spec, strict_rng);
  const MultiLevelRelease loose_rel = loose.Release(loose_rng);
  const MultiLevelRelease strict_rel = strict.Release(strict_rng);

  // Identical released bits at identical seeds: the knob is invisible to
  // the mechanism (and to the artifact fingerprint).
  ASSERT_EQ(loose_rel.num_levels(), strict_rel.num_levels());
  for (int l = 0; l < loose_rel.num_levels(); ++l) {
    EXPECT_EQ(loose_rel.levels()[static_cast<std::size_t>(l)].noisy_group_counts,
              strict_rel.levels()[static_cast<std::size_t>(l)].noisy_group_counts)
        << "level " << l;
  }

  // The ledger sees the difference: count and parallel_width trade places...
  const int width = loose.hierarchy().num_levels();
  const MechanismEvent& loose_event = loose.ledger().events().back();
  const MechanismEvent& strict_event = strict.ledger().events().back();
  EXPECT_EQ(loose_event.count, 1);
  EXPECT_EQ(loose_event.parallel_width, width);
  EXPECT_EQ(strict_event.count, width);
  EXPECT_EQ(strict_event.parallel_width, 1);

  // ...so the strict session pays (width - 1) extra phase-2 epsilons.
  const double eps2 = loose.spec().budget.phase2_epsilon();
  EXPECT_NEAR(
      strict.ledger().epsilon_spent() - loose.ledger().epsilon_spent(),
      static_cast<double>(width - 1) * eps2, 1e-12);
}

TEST(SessionAccountingTest, NoiseMultiplierForCalibratesAKReleaseBudget) {
  // Plan a σ/Δ for an 8-release budget up front, then verify the composed
  // epsilon actually fits (the satellite's round-trip contract).
  const double target_eps = 2.0;
  const gdp::dp::Delta delta(1e-6);
  const double m = gdp::dp::RdpAccountant::NoiseMultiplierFor(target_eps, delta, 8);
  gdp::dp::RdpAccountant accountant;
  accountant.AddGaussians(m, 8);
  EXPECT_LE(accountant.EpsilonFor(delta), target_eps);
  EXPECT_GT(accountant.EpsilonFor(delta), target_eps * 0.99)
      << "the calibrated multiplier should sit essentially ON the target";
}

}  // namespace
}  // namespace gdp::core
