#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace gdp::common {
namespace {

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExpTest, SingleElementIsIdentity) {
  const std::vector<double> xs{3.25};
  EXPECT_DOUBLE_EQ(LogSumExp(xs), 3.25);
}

TEST(LogSumExpTest, MatchesDirectComputationForSmallValues) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const double direct = std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(xs), direct, 1e-12);
}

TEST(LogSumExpTest, StableForHugeValues) {
  const std::vector<double> xs{1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, StableForTinyValues) {
  const std::vector<double> xs{-1000.0, -1000.0, -1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(xs), -1000.0 + std::log(4.0), 1e-9);
}

TEST(LogSumExpTest, AllMinusInfinityStaysMinusInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  const std::vector<double> xs{ninf, ninf};
  EXPECT_EQ(LogSumExp(xs), ninf);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormalCdfTest, ExtremeTailsSaturate) {
  EXPECT_NEAR(NormalCdf(40.0), 1.0, 1e-15);
  EXPECT_LT(NormalCdf(-40.0), 1e-300);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.841344746068543), 1.0, 1e-10);
}

TEST(NormalQuantileTest, SymmetricAroundHalf) {
  for (const double p : {0.01, 0.2, 0.35}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-10);
  }
}

TEST(NormalQuantileTest, RejectsBoundaries) {
  EXPECT_THROW((void)NormalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)NormalQuantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)NormalQuantile(-0.5), std::invalid_argument);
  EXPECT_THROW((void)NormalQuantile(1.5), std::invalid_argument);
}

TEST(ErfInvTest, InvertsErf) {
  for (const double x : {-0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9}) {
    EXPECT_NEAR(std::erf(ErfInv(x)), x, 1e-10) << "x=" << x;
  }
}

TEST(ErfInvTest, RejectsOutOfDomain) {
  EXPECT_THROW((void)ErfInv(1.0), std::invalid_argument);
  EXPECT_THROW((void)ErfInv(-1.0), std::invalid_argument);
}

TEST(RunningStatsTest, EmptyStats) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    whole.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  const RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 9.0);
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_THROW((void)Quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)Quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)Quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(MeanTest, BasicAndEmpty) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(RelativeDiffTest, SymmetricAndScaled) {
  EXPECT_DOUBLE_EQ(RelativeDiff(10.0, 11.0), RelativeDiff(11.0, 10.0));
  EXPECT_NEAR(RelativeDiff(100.0, 110.0), 10.0 / 110.0, 1e-15);
  EXPECT_EQ(RelativeDiff(0.0, 0.0), 0.0);
}

TEST(ClampTest, ClampsAndValidates) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_THROW((void)Clamp(0.0, 2.0, 1.0), std::invalid_argument);
}

TEST(IsFinitePositiveTest, Classification) {
  EXPECT_TRUE(IsFinitePositive(1e-300));
  EXPECT_TRUE(IsFinitePositive(42.0));
  EXPECT_FALSE(IsFinitePositive(0.0));
  EXPECT_FALSE(IsFinitePositive(-1.0));
  EXPECT_FALSE(IsFinitePositive(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(IsFinitePositive(std::numeric_limits<double>::quiet_NaN()));
}

}  // namespace
}  // namespace gdp::common
